#ifndef MAD_SERVER_STATE_H_
#define MAD_SERVER_STATE_H_

// The serving brain of madd: one writer, many readers, snapshot isolation.
//
// Why this is sound (the monotonicity argument, DESIGN.md "Serving"): the
// model served is the least fixpoint of a monotone T_P over a complete
// lattice, and the only write operation is the insert-only incremental
// Engine::Update, which moves the least model strictly up in ⊑. The writer
// applies each insert batch to its private working database and then
// *publishes* an immutable snapshot (Database::Snapshot — shared relations,
// copy-on-write on the update path, so publishing is O(#relations), not
// O(#rows)). A reader pins whichever snapshot was current when its request
// arrived and computes against it exclusively; since every snapshot is the
// exact least model of a serial prefix of the insert stream, no reader can
// ever observe a torn state — not by luck, but because the lattice order
// totally orders the published models.

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datalog/ast.h"
#include "datalog/database.h"
#include "server/json.h"
#include "util/resource_guard.h"
#include "util/status.h"

namespace mad {
namespace server {

/// One published, immutable least-model snapshot. `db` shares relations with
/// the writer's working set via copy-on-write; all access must be read-only
/// (enforced by convention: readers only ever hold const pointers).
struct ServingSnapshot {
  int64_t epoch = 0;
  datalog::Database db;
  core::EvalStats stats;  ///< cumulative: load run + every applied update
  core::Completeness completeness = core::Completeness::kLeastModel;
  LimitKind limit_tripped = LimitKind::kNone;
};

/// Per-verb latency accounting: count, running mean, and p50/p95/p99 over a
/// sliding reservoir of the most recent samples.
class LatencyRecorder {
 public:
  void Record(const std::string& verb, double micros);
  /// {"<verb>": {"count": N, "mean_us": m, "p50_us": ..., "p95_us": ...,
  ///  "p99_us": ...}, ...}
  Json ToJson() const;

 private:
  static constexpr size_t kReservoir = 4096;
  struct PerVerb {
    int64_t count = 0;
    double total_us = 0;
    std::vector<double> recent;  ///< ring buffer, capacity kReservoir
    size_t next = 0;
  };
  mutable std::mutex mu_;
  std::map<std::string, PerVerb> verbs_;
};

/// Owns the program, the engine, the writer's working model, and the
/// published snapshot. Handle() is safe to call from any number of
/// connection threads concurrently: reads pin a snapshot, the insert path
/// serializes on an internal writer mutex.
class ServerState {
 public:
  struct LoadOptions {
    core::EvalOptions eval;
    /// Server-wide cancellation (SIGINT): merged into every request's
    /// ResourceGuard so shutdown interrupts long evaluations, and honored by
    /// the load-time run itself.
    std::shared_ptr<CancellationToken> cancellation;
  };

  /// Parses, checks (the full PR2/PR3 check-and-certify pipeline runs inside
  /// Engine::Run when eval.validate is set — a rejected program never
  /// serves), evaluates the initial least model, and publishes epoch 0.
  static StatusOr<std::unique_ptr<ServerState>> Load(
      std::string_view program_text, LoadOptions options);

  /// Dispatches one request and returns the response. Verbs: ping, query,
  /// insert, dump, stats, shutdown. Unknown verbs get ok:false responses;
  /// this never fails at the transport level.
  Json Handle(const Json& request);

  /// The currently published snapshot (never null after Load).
  std::shared_ptr<const ServingSnapshot> Pin() const;

  int64_t epoch() const;
  const core::Engine& engine() const { return *engine_; }
  const datalog::Program& program() const { return *program_; }

 private:
  ServerState() = default;

  Json HandlePing();
  Json HandleQuery(const Json& request);
  Json HandleInsert(const Json& request);
  Json HandleDump();
  Json HandleStats();

  /// Reads {"limits": {"deadline_ms": N, "max_tuples": N}} into engine
  /// limits, always merging the server-wide cancellation token.
  ResourceLimits RequestResourceLimits(const Json& request) const;

  /// Publishes the writer's current working model as epoch `epoch_`.
  void Publish();

  // Program first: engine_ and every PredicateInfo pointer reference it.
  std::unique_ptr<datalog::Program> program_;
  std::unique_ptr<core::Engine> engine_;
  /// Name lookup frozen at load so reader threads never touch the Program's
  /// internals while the writer-side parser appends to it.
  std::map<std::string, const datalog::PredicateInfo*, std::less<>> preds_;
  std::shared_ptr<CancellationToken> cancellation_;
  bool updates_safe_ = false;  ///< AnalyzeUpdateSafety verdict, fixed at load
  std::chrono::steady_clock::time_point start_{};

  /// Writer lane. `work_` is the evolving model; only the thread holding
  /// writer_mu_ touches it (or the Program, via the insert parser).
  std::mutex writer_mu_;
  core::EvalResult work_;
  int64_t epoch_ = 0;
  /// Set when an insert failed *after* merging began (increase-unsafe trip):
  /// the working set may be under-closed, so further inserts are refused
  /// while reads keep serving the last sound snapshot.
  bool poisoned_ = false;

  mutable std::mutex snap_mu_;
  std::shared_ptr<const ServingSnapshot> snapshot_;

  LatencyRecorder latency_;
};

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_STATE_H_
