#ifndef MAD_SERVER_STATE_H_
#define MAD_SERVER_STATE_H_

// The serving brain of madd: one writer, many readers, snapshot isolation.
//
// Why this is sound (the monotonicity argument, DESIGN.md "Serving"): the
// model served is the least fixpoint of a monotone T_P over a complete
// lattice, and the only write operation is the insert-only incremental
// Engine::Update, which moves the least model strictly up in ⊑. The writer
// applies each insert batch to its private working database and then
// *publishes* an immutable snapshot (Database::Snapshot — shared relations,
// copy-on-write on the update path, so publishing is O(#relations), not
// O(#rows)). A reader pins whichever snapshot was current when its request
// arrived and computes against it exclusively; since every snapshot is the
// exact least model of a serial prefix of the insert stream, no reader can
// ever observe a torn state — not by luck, but because the lattice order
// totally orders the published models.
//
// Durability (DESIGN.md "Durability") extends the same prefix argument to
// disk: every accepted insert batch is appended to a CRC32C-framed,
// fsync'd write-ahead log *before* Engine::Update runs, periodic
// checkpoints capture the materialized model, and startup replays the
// newest checkpoint plus the WAL suffix — reproducing the exact pre-crash
// least model (replay of any prefix is sound; replay of everything is
// exact). On WAL failure (disk full, I/O error) the server degrades: writes
// are refused with kDurabilityDegraded, reads keep serving the last sound
// snapshot.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datalog/ast.h"
#include "datalog/database.h"
#include "server/json.h"
#include "server/recovery.h"
#include "server/wal.h"
#include "util/resource_guard.h"
#include "util/status.h"

namespace mad {
namespace server {

/// One published, immutable least-model snapshot. `db` shares relations with
/// the writer's working set via copy-on-write; all access must be read-only
/// (enforced by convention: readers only ever hold const pointers).
struct ServingSnapshot {
  int64_t epoch = 0;
  datalog::Database db;
  /// The raw extensional facts behind `db` — program facts plus every
  /// acknowledged insert, *before* materialization. Demand queries evaluate
  /// their sliced cone from this (a materialized model cannot be fed back
  /// into Engine::Query: IDB relations would mix base and derived rows).
  datalog::Database base;
  core::EvalStats stats;  ///< cumulative: load run + every applied update
  core::Completeness completeness = core::Completeness::kLeastModel;
  LimitKind limit_tripped = LimitKind::kNone;
};

/// Configuration for running as a read replica of another madd. A replica
/// never accepts writes directly: a Replicator thread pulls the primary's
/// WAL over the wire protocol and applies it through the same writer lane.
struct ReplicaOptions {
  bool enabled = false;
  std::string primary_host;
  int primary_port = 0;
};

/// Per-verb latency accounting: count, running mean, and p50/p95/p99 over a
/// sliding reservoir of the most recent samples.
class LatencyRecorder {
 public:
  void Record(const std::string& verb, double micros);
  /// {"<verb>": {"count": N, "mean_us": m, "p50_us": ..., "p95_us": ...,
  ///  "p99_us": ...}, ...}
  Json ToJson() const;

 private:
  static constexpr size_t kReservoir = 4096;
  struct PerVerb {
    int64_t count = 0;
    double total_us = 0;
    std::vector<double> recent;  ///< ring buffer, capacity kReservoir
    size_t next = 0;
  };
  mutable std::mutex mu_;
  std::map<std::string, PerVerb> verbs_;
};

/// Owns the program, the engine, the writer's working model, and the
/// published snapshot. Handle() is safe to call from any number of
/// connection threads concurrently: reads pin a snapshot, the insert path
/// serializes on an internal writer mutex.
class ServerState {
 public:
  struct LoadOptions {
    core::EvalOptions eval;
    /// Server-wide cancellation (SIGINT): merged into every request's
    /// ResourceGuard so shutdown interrupts long evaluations, and honored by
    /// the load-time run itself.
    std::shared_ptr<CancellationToken> cancellation;
    /// WAL + checkpoint + crash recovery; disabled while data_dir is empty.
    DurabilityOptions durability;
    /// Read-replica mode. Mutually exclusive with durability: the primary's
    /// WAL is the log of record, and a restarted replica re-bootstraps from
    /// the primary (lattice joins make the full re-apply a safe no-op).
    ReplicaOptions replica;
  };

  /// Parses, checks (the full PR2/PR3 check-and-certify pipeline runs inside
  /// Engine::Run when eval.validate is set — a rejected program never
  /// serves), evaluates the initial least model, and publishes epoch 0.
  /// With durability enabled, first recovers from the data directory:
  /// newest valid checkpoint, then WAL replay (torn tails truncated), then
  /// — under DurabilityOptions::verify_recovery — a from-scratch
  /// re-evaluation that must reproduce the recovered model byte-identically.
  static StatusOr<std::unique_ptr<ServerState>> Load(
      std::string_view program_text, LoadOptions options);

  /// Dispatches one request and returns the response. Verbs: ping, query,
  /// insert, dump, stats, sync, recover, repl_subscribe, repl_frames,
  /// shutdown. Unknown verbs get ok:false responses; this never fails at
  /// the transport level.
  ///
  /// Read verbs (query, dump, stats) honor a top-level "min_epoch" token
  /// (the epoch an insert acknowledgment returned): the read blocks until
  /// the published epoch reaches the token or "min_epoch_wait_ms" expires,
  /// then fails with kReplicaLagging rather than silently serving an older
  /// snapshot. On a replica, write verbs fail with kNotPrimary and a
  /// "redirect" object naming the primary.
  Json Handle(const Json& request);

  /// The currently published snapshot (never null after Load).
  std::shared_ptr<const ServingSnapshot> Pin() const;

  int64_t epoch() const;
  const core::Engine& engine() const { return *engine_; }
  const datalog::Program& program() const { return *program_; }

  /// Durability health, for callers that bypass the JSON surface (tests).
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  bool is_replica() const { return replica_.enabled; }

  /// Blocks until the published epoch reaches `min_epoch` or the timeout
  /// expires; returns whether the bar was met. Because the published model
  /// only moves up in ⊑, a true return certifies that the snapshot pinned
  /// *afterwards* covers every write acknowledged with a token ≤ min_epoch.
  bool WaitForEpoch(int64_t min_epoch, std::chrono::milliseconds timeout) const;

  /// Replica-side apply of one shipped insert batch — exactly the WAL
  /// record the primary acknowledged. Idempotent: re-applying an already
  /// covered batch is a lattice-join no-op, so the replicator may re-send
  /// freely across reconnects. Advances the published epoch to
  /// max(current, epoch).
  Status ApplyReplicated(int64_t epoch, const std::string& facts_text);
  /// Replica-side bootstrap: the primary's full accepted history in one
  /// batch (checkpoint-seeded late join, or re-join after the primary
  /// pruned the segment the replica was reading). Safe at any time, for
  /// the same idempotence reason.
  Status ApplyBootstrap(int64_t epoch, const std::string& facts_text);

  /// Point-in-time replication progress, pushed by the Replicator thread
  /// and rendered by the stats verb.
  struct ReplicationProgress {
    bool connected = false;
    bool broken = false;  ///< unrecoverable: program mismatch or apply failure
    int64_t primary_epoch = 0;  ///< highest epoch the primary reported
    int64_t reconnects = 0;
    int64_t bootstraps = 0;
    int64_t frames = 0;  ///< repl_frames responses processed
    int64_t records_applied = 0;
    int64_t crc_failures = 0;  ///< re-verification mismatches (frame dropped)
    std::string last_error;
  };
  void ReportReplication(const ReplicationProgress& progress);
  ReplicationProgress replication_progress() const;

 private:
  ServerState() = default;

  Json HandlePing();
  Json HandleQuery(const Json& request);
  /// The demand-driven form of the query verb, taken when the request
  /// carries an "atom" field: a point query in .mdl syntax (e.g.
  /// "s(n0, Y, C)") answered by Engine::Query over the pinned snapshot's
  /// base facts — the certified magic-sets slice when it applies, full cone
  /// evaluation otherwise. "mode" selects "auto" (default), "demand"
  /// (bail-out is an error) or "full" (the oracle).
  Json HandleDemandQuery(const Json& request);
  Json HandleInsert(const Json& request);
  Json HandleDump();
  Json HandleStats();
  Json HandleSync(const Json& request);
  Json HandleRecover();
  /// Primary-side replication handshake: returns the program text (with its
  /// CRC so the replica can refuse a mismatched primary), the committed
  /// epoch, the stream start position, and — when the WAL alone no longer
  /// covers the subscriber's gap — a full-history bootstrap batch.
  Json HandleReplSubscribe(const Json& request);
  /// Primary-side log shipping: a window of acknowledged WAL records from a
  /// (segment, offset) position, long-pollable via "wait_ms". Signals
  /// position_pruned when the requested segment was checkpointed away.
  Json HandleReplFrames(const Json& request);
  /// kNotPrimary error response carrying a redirect to the primary.
  Json NotPrimaryResponse(const std::string& verb) const;
  /// Shared body of ApplyReplicated/ApplyBootstrap.
  Status ApplyShipped(int64_t epoch, const std::string& facts_text,
                      bool bootstrap);

  /// Reads {"limits": {"deadline_ms": N, "max_tuples": N}} into engine
  /// limits, always merging the server-wide cancellation token.
  ResourceLimits RequestResourceLimits(const Json& request) const;

  /// Publishes the writer's current working model as epoch `epoch_`.
  void Publish();

  /// Startup-time recovery body: restore the newest valid checkpoint into
  /// the working model, replay the WAL suffix, optionally certify against a
  /// from-scratch evaluation, and open a fresh WAL segment.
  Status RecoverAndOpenWal();
  /// Differential certification: program + full insert history, evaluated
  /// from scratch, must reproduce the working model byte-identically.
  Status VerifyRecoveredState();
  /// Writes a checkpoint of the current working model, rotates the WAL, and
  /// prunes covered files. `force` bypasses the epoch/byte thresholds.
  /// Requires writer_mu_; best effort — failures are counted, not fatal
  /// (the WAL remains authoritative).
  void MaybeCheckpoint(bool force);
  util::IoHooks* hooks() const {
    return durability_.hooks != nullptr ? durability_.hooks
                                        : util::DefaultIoHooks();
  }

  // Program first: engine_ and every PredicateInfo pointer reference it.
  std::unique_ptr<datalog::Program> program_;
  std::unique_ptr<core::Engine> engine_;
  /// Name lookup frozen at load so reader threads never touch the Program's
  /// internals while the writer-side parser appends to it.
  std::map<std::string, const datalog::PredicateInfo*, std::less<>> preds_;
  std::shared_ptr<CancellationToken> cancellation_;
  bool updates_safe_ = false;  ///< AnalyzeUpdateSafety verdict, fixed at load
  std::chrono::steady_clock::time_point start_{};
  std::string program_text_;          ///< exactly as loaded (checkpointed)
  std::string certificate_summary_;   ///< per-component kinds, for ckpts

  /// Writer lane. `work_` is the evolving model; only the thread holding
  /// writer_mu_ touches it (or the Program, via the insert parser) — and
  /// all durability state below except the two health atomics.
  std::mutex writer_mu_;
  core::EvalResult work_;
  /// Raw extensional facts (program facts + every acknowledged insert),
  /// maintained alongside `work_` and snapshotted into each published
  /// ServingSnapshot as the demand-query evaluation base.
  datalog::Database base_facts_;
  int64_t epoch_ = 0;
  /// Set when an insert failed *after* merging began (increase-unsafe trip):
  /// the working set may be under-closed, so further inserts are refused
  /// while reads keep serving the last sound snapshot. The `recover` verb
  /// rebuilds the writer from the snapshot and clears this.
  std::atomic<bool> poisoned_{false};

  // --- durability (writer lane; counters mirrored under dur_mu_) ---------
  DurabilityOptions durability_;
  std::unique_ptr<WalWriter> wal_;
  /// Concatenated accepted insert batches since epoch 0 — the full EDB
  /// delta history, checkpointed for differential recovery certification.
  std::string cumulative_facts_;
  /// cumulative_facts_.size(), mirrored after every mutation so the stats
  /// verb can report it without taking writer_mu_. On a replica this must
  /// stay bounded by the primary's history across reconnects (re-streamed
  /// batches are deduplicated by epoch in ApplyShipped).
  std::atomic<int64_t> history_bytes_{0};
  /// Set when the WAL can no longer persist writes (ENOSPC, I/O error):
  /// inserts are refused with kDurabilityDegraded, reads keep serving.
  std::atomic<bool> degraded_{false};

  /// Small scalar mirror of durability state for the stats verb, so readers
  /// never block behind a long-running update on writer_mu_.
  struct DurabilityCounters {
    int64_t durable_epoch = 0;     ///< highest epoch known fsync'd
    uint64_t wal_seq = 0;
    int64_t wal_records = 0;
    int64_t wal_bytes = 0;
    int64_t last_checkpoint_epoch = 0;
    int64_t checkpoints_written = 0;
    int64_t checkpoint_failures = 0;
    int64_t replayed_records = 0;
    int64_t truncated_tail_records = 0;
    int64_t skipped_aborted_batches = 0;
    int64_t invalid_checkpoints = 0;
    double recovery_seconds = 0;
  };
  mutable std::mutex dur_mu_;
  DurabilityCounters dur_;
  /// Refreshes the wal_* mirror fields from wal_ (writer lane only).
  void SyncDurabilityCounters();

  // --- replication --------------------------------------------------------
  ReplicaOptions replica_;
  /// Counters for both roles, separate from dur_mu_ so stats rendering and
  /// the Replicator's progress pushes never contend with the writer lane.
  mutable std::mutex repl_mu_;
  ReplicationProgress repl_;     ///< replica role: pushed by the Replicator
  int64_t subscribes_served_ = 0;  // primary role, under repl_mu_
  int64_t bootstraps_served_ = 0;
  int64_t frames_served_ = 0;
  int64_t records_shipped_ = 0;

  mutable std::mutex snap_mu_;
  /// Signaled on every Publish; read verbs carrying min_epoch and the
  /// primary's long-polling frame requests wait on it.
  mutable std::condition_variable snap_cv_;
  std::shared_ptr<const ServingSnapshot> snapshot_;

  /// Per-snapshot demand-query memo: responses keyed by "atom|mode", valid
  /// only while memo_epoch_ matches the pinned snapshot's epoch (a publish
  /// invalidates the table wholesale — the model only moves up in ⊑, so a
  /// stale answer could under-report). Requests carrying per-call limits
  /// bypass the memo: their truncation behaviour is request-specific.
  mutable std::mutex memo_mu_;
  mutable int64_t memo_epoch_ = -1;
  mutable std::map<std::string, Json> demand_memo_;

  LatencyRecorder latency_;
};

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_STATE_H_
