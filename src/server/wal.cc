#include "server/wal.h"

#include <cstring>

#include "util/crc32c.h"
#include "util/string_util.h"

namespace mad {
namespace server {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kNever:
      return "never";
  }
  return "unknown";
}

std::string WalSegmentName(uint64_t seq) {
  return StrPrintf("wal-%010llu.log", static_cast<unsigned long long>(seq));
}

bool ParseWalSegmentName(const std::string& name, uint64_t* seq) {
  if (name.size() != 4 + 10 + 4 || name.rfind("wal-", 0) != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 14; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

namespace {

std::string EncodeWalPayload(const WalRecord& record) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutU64(&payload, static_cast<uint64_t>(record.epoch));
  payload.append(record.facts_text);
  return payload;
}

}  // namespace

uint32_t WalPayloadCrc(const WalRecord& record) {
  return util::Crc32c(EncodeWalPayload(record));
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload = EncodeWalPayload(record);
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, util::MaskCrc(util::Crc32c(payload)));
  frame.append(payload);
  return frame;
}

StatusOr<WalReadResult> ReadWalSegment(const std::string& path) {
  return ReadWalSegmentFrom(path, 0);
}

StatusOr<WalReadResult> ReadWalSegmentFrom(const std::string& path,
                                           int64_t offset) {
  MAD_ASSIGN_OR_RETURN(std::string data, util::ReadFileToString(path));
  WalReadResult out;

  // Magic. A file shorter than the magic is the torn remains of segment
  // creation — treat as an empty segment; wrong bytes are hard corruption.
  if (data.size() < kWalMagicBytes) {
    if (std::memcmp(data.data(), kWalMagic, data.size()) != 0) {
      return Status::Internal(path + ": bad WAL magic");
    }
    out.truncated_tail = !data.empty();
    out.valid_bytes = 0;
    return out;
  }
  if (std::memcmp(data.data(), kWalMagic, kWalMagicBytes) != 0) {
    return Status::Internal(path + ": bad WAL magic");
  }

  size_t off = kWalMagicBytes;
  if (offset > static_cast<int64_t>(kWalMagicBytes)) {
    // Resume where a previous read stopped. A resume point past EOF means
    // the caller's position came from a different (longer) incarnation of
    // this segment — segments are append-only, so that is corruption.
    if (offset > static_cast<int64_t>(data.size())) {
      return Status::Internal(StrPrintf(
          "%s: resume offset %lld is beyond the %zu-byte segment",
          path.c_str(), static_cast<long long>(offset), data.size()));
    }
    off = static_cast<size_t>(offset);
  }
  out.valid_bytes = static_cast<int64_t>(off);
  while (off < data.size()) {
    // A header that does not fit before EOF is a torn tail.
    if (data.size() - off < 8) {
      out.truncated_tail = true;
      break;
    }
    const uint32_t len = GetU32(data.data() + off);
    const uint32_t want_crc = util::UnmaskCrc(GetU32(data.data() + off + 4));
    const size_t body = off + 8;
    // Claimed extent past EOF: the crash-torn signature, whether the length
    // field is real (payload cut short) or garbage from a torn header —
    // after a crash nothing follows the tear, so a plausible-but-overlong
    // extent can only be the tail.
    if (len > data.size() - body) {
      out.truncated_tail = true;
      break;
    }
    if (len > kMaxWalRecordBytes || len < 9) {
      // Extent fits but the length is impossible (payload needs at least
      // type + epoch): bytes after this point exist, so this is interior
      // corruption, not a tear.
      return Status::Internal(
          StrPrintf("%s: corrupt record length %u at offset %zu",
                    path.c_str(), len, off));
    }
    const uint32_t got_crc = util::Crc32c(data.data() + body, len);
    if (got_crc != want_crc) {
      if (body + len == data.size()) {
        // CRC-failing final record: torn payload/CRC write. Drop it.
        out.truncated_tail = true;
        break;
      }
      return Status::Internal(StrPrintf(
          "%s: CRC mismatch at offset %zu (mid-segment corruption)",
          path.c_str(), off));
    }
    WalRecord rec;
    const uint8_t type = static_cast<uint8_t>(data[body]);
    if (type != static_cast<uint8_t>(WalRecordType::kInsert) &&
        type != static_cast<uint8_t>(WalRecordType::kAbort)) {
      return Status::Internal(StrPrintf("%s: unknown record type %u",
                                        path.c_str(), type));
    }
    rec.type = static_cast<WalRecordType>(type);
    rec.epoch = static_cast<int64_t>(GetU64(data.data() + body + 1));
    rec.facts_text.assign(data, body + 9, len - 9);
    rec.crc = got_crc;
    out.records.push_back(std::move(rec));
    off = body + len;
    out.valid_bytes = static_cast<int64_t>(off);
    out.record_ends.push_back(out.valid_bytes);
  }
  return out;
}

StatusOr<WalWriter> WalWriter::Create(const std::string& dir, uint64_t seq,
                                      FsyncPolicy fsync,
                                      util::IoHooks* hooks) {
  const std::string path = dir + "/" + WalSegmentName(seq);
  if (util::FileExists(path)) {
    return Status::Internal(path + ": WAL segment already exists");
  }
  MAD_ASSIGN_OR_RETURN(util::AppendFile file,
                       util::AppendFile::Open(path, hooks));
  WalWriter w;
  w.file_ = std::move(file);
  w.seq_ = seq;
  w.fsync_ = fsync;
  MAD_RETURN_IF_ERROR(
      w.file_.Append(std::string_view(kWalMagic, kWalMagicBytes)));
  if (fsync == FsyncPolicy::kAlways) MAD_RETURN_IF_ERROR(w.file_.Sync());
  return w;
}

Status WalWriter::Append(const WalRecord& record) {
  if (record.facts_text.size() + 9 > kMaxWalRecordBytes) {
    return Status::InvalidArgument(StrPrintf(
        "WAL record of %zu bytes exceeds the %zu-byte cap",
        record.facts_text.size(), kMaxWalRecordBytes));
  }
  MAD_RETURN_IF_ERROR(file_.Append(EncodeWalRecord(record)));
  if (fsync_ == FsyncPolicy::kAlways) MAD_RETURN_IF_ERROR(file_.Sync());
  ++records_;
  return Status::OK();
}

Status WalWriter::Sync() { return file_.Sync(); }

}  // namespace server
}  // namespace mad
