#ifndef MAD_SERVER_WAL_H_
#define MAD_SERVER_WAL_H_

// Write-ahead log of insert batches — the durability half of madd's crash
// story (DESIGN.md "Durability"). Soundness rides on the paper's central
// property: the served model is the limit of a monotone chain of lattice
// joins, so replaying *any prefix* of the insert history yields a sound
// (⊑ least-model) partial model, and replaying the whole history reproduces
// the exact least model. The WAL therefore logs the raw accepted `.mdl`
// fact text per batch — replay runs the identical ParseFacts + Engine::Update
// path the live server ran, and determinism of the least fixpoint does the
// rest.
//
// On-disk format (all integers little-endian):
//
//   segment  := magic(8 = "MADWAL01") record*
//   record   := length(u32) masked_crc32c(u32) payload
//   payload  := type(u8) epoch(u64) facts_text(bytes)
//
// `length` counts payload bytes; the CRC covers the payload and is stored
// masked (util/crc32c.h) so checksummed checksums stay independent. Record
// types: kInsert logs an accepted batch whose application produced `epoch`;
// kAbort marks the *immediately preceding* kInsert with the same epoch as
// failed mid-merge (the writer poisoned itself) — replay must skip that
// batch.
//
// Torn-tail tolerance: a crash mid-append leaves a partial or CRC-failing
// record at the *end* of the last segment. Readers truncate such a tail and
// report it; a bad record with more data after its claimed extent is
// corruption in the middle of a segment and hard-fails — silent data loss
// in the interior would break the prefix argument.

#include <cstdint>
#include <string>
#include <vector>

#include "util/posix_file.h"
#include "util/status.h"

namespace mad {
namespace server {

/// How eagerly appended records reach stable storage.
enum class FsyncPolicy {
  /// fsync after every accepted batch: an acknowledged insert survives any
  /// crash. The default.
  kAlways,
  /// Never fsync explicitly (OS page cache decides): maximum throughput, a
  /// crash may lose the most recent acknowledged batches — still sound
  /// (recovered state is an earlier prefix model), just less durable.
  kNever,
};

const char* FsyncPolicyName(FsyncPolicy p);

enum class WalRecordType : uint8_t {
  kInsert = 1,
  kAbort = 2,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  int64_t epoch = 0;
  std::string facts_text;  ///< empty for kAbort
  /// Unmasked CRC32C of the on-disk payload, filled in by readers. Log
  /// shipping forwards this checksum end-to-end so a replica can re-verify
  /// the bytes it applies against what the primary's disk held — the wire
  /// layer's own framing does not cover the replication payload semantics.
  uint32_t crc = 0;
};

/// The unmasked CRC32C of `record`'s payload as EncodeWalRecord would frame
/// it. Replicas recompute this over shipped records and compare against the
/// forwarded WalRecord::crc.
uint32_t WalPayloadCrc(const WalRecord& record);

/// `wal-<seq>.log` for a zero-padded decimal sequence number.
std::string WalSegmentName(uint64_t seq);
/// Parses a segment file name; false if `name` is not one.
bool ParseWalSegmentName(const std::string& name, uint64_t* seq);

/// The outcome of reading one segment.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// record_ends[i] is the byte offset just past records[i] — the resume
  /// point a streaming reader hands back to continue after that record.
  std::vector<int64_t> record_ends;
  /// True when a torn/partial/CRC-failing tail record was dropped — the
  /// expected signature of a crash mid-append, not an error.
  bool truncated_tail = false;
  /// Byte offset of the end of the last intact record (where an in-place
  /// repair would truncate to).
  int64_t valid_bytes = 0;
};

/// Reads every intact record of one segment file. Returns an error for a
/// missing/garbled header or for corruption *before* the tail (a bad record
/// followed by more data).
StatusOr<WalReadResult> ReadWalSegment(const std::string& path);

/// Same, but parsing resumes at byte `offset` — a `valid_bytes` value from a
/// previous read of this segment. Offsets at or below the magic re-read the
/// whole segment. The replication cursor uses this so tailing a live segment
/// only re-parses the suffix the writer appended since the last poll.
StatusOr<WalReadResult> ReadWalSegmentFrom(const std::string& path,
                                           int64_t offset);

/// Appends records to one segment file. Single-writer (the server's writer
/// mutex); all I/O flows through the IoHooks seam for fault injection.
class WalWriter {
 public:
  /// Creates segment `wal-<seq>.log` in `dir` and writes the magic. Fails if
  /// the segment already exists with content (recovery always rotates to a
  /// fresh sequence number instead of appending to an old segment).
  static StatusOr<WalWriter> Create(const std::string& dir, uint64_t seq,
                                    FsyncPolicy fsync, util::IoHooks* hooks);

  WalWriter() = default;
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Appends one record and, under FsyncPolicy::kAlways, fsyncs before
  /// returning — the insert is only acknowledged after this succeeds. Any
  /// failure leaves the segment with (at most) a torn tail record, which
  /// recovery truncates.
  Status Append(const WalRecord& record);

  /// Explicit fsync (the `sync` verb; a no-op freshness check under kAlways).
  Status Sync();

  uint64_t seq() const { return seq_; }
  int64_t bytes() const { return file_.size(); }
  int64_t records() const { return records_; }
  const std::string& path() const { return file_.path(); }

 private:
  util::AppendFile file_;
  uint64_t seq_ = 0;
  int64_t records_ = 0;
  FsyncPolicy fsync_ = FsyncPolicy::kAlways;
};

/// Serializes one record to its on-disk framing (exposed for tests and for
/// bench_wal's byte accounting).
std::string EncodeWalRecord(const WalRecord& record);

inline constexpr char kWalMagic[] = "MADWAL01";  // 8 bytes, no terminator
inline constexpr size_t kWalMagicBytes = 8;
/// Hard cap on one record's payload — mirrors the wire frame cap so a WAL
/// can never hold a batch the protocol could not have carried.
inline constexpr size_t kMaxWalRecordBytes = 64u << 20;

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_WAL_H_
