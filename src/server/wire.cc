#include "server/wire.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

#include "util/string_util.h"

namespace mad {
namespace server {

namespace {

Status IoError(const char* op) {
  return Status::Internal(StrPrintf("%s: %s", op, std::strerror(errno)));
}

/// Reads exactly `n` bytes; false via *eof when the peer closed cleanly at
/// offset 0 (only meaningful for the first byte of a header).
Status ReadExact(int fd, char* buf, size_t n, bool* eof) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("read");
    }
    if (r == 0) {
      if (eof != nullptr && got == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::Internal("peer closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrPrintf("frame payload of %zu bytes exceeds the %zu-byte cap",
                  payload.size(), kMaxFrameBytes));
  }
  std::string frame = StrPrintf("%zu\n", payload.size());
  frame.append(payload);
  frame.push_back('\n');
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t w = ::write(fd, frame.data() + sent, frame.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError("write");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

StatusOr<bool> ReadFrame(int fd, std::string* payload) {
  // Header: decimal digits then '\n'. 12 digits comfortably covers the
  // frame cap and can never overflow the stoull below.
  std::string header;
  for (;;) {
    char c;
    bool eof = false;
    MAD_RETURN_IF_ERROR(
        ReadExact(fd, &c, 1, header.empty() ? &eof : nullptr));
    if (eof) return false;
    if (c == '\n') break;
    if (c < '0' || c > '9' || header.size() >= 12) {
      return Status::InvalidArgument("malformed frame header");
    }
    header.push_back(c);
  }
  if (header.empty()) return Status::InvalidArgument("empty frame header");
  unsigned long long len = std::stoull(header);
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrPrintf("frame of %llu bytes exceeds the %zu-byte cap", len,
                  kMaxFrameBytes));
  }
  payload->resize(static_cast<size_t>(len));
  if (len > 0) {
    MAD_RETURN_IF_ERROR(ReadExact(fd, payload->data(), payload->size(),
                                  nullptr));
  }
  char nl;
  MAD_RETURN_IF_ERROR(ReadExact(fd, &nl, 1, nullptr));
  if (nl != '\n') {
    return Status::InvalidArgument("frame missing terminating newline");
  }
  return true;
}

}  // namespace server
}  // namespace mad
