#ifndef MAD_SERVER_WIRE_H_
#define MAD_SERVER_WIRE_H_

// The madd wire format: length-prefixed newline-JSON frames over a stream
// socket. One frame is
//
//     <decimal payload length> '\n' <payload> '\n'
//
// where <payload> is a single-line JSON document of exactly the stated byte
// length (the trailing newline is framing, not payload). The length prefix
// lets the reader allocate once and never scan for a terminator inside the
// payload; the newlines keep frames greppable with netcat during debugging.
// Both sides reject frames above a hard cap so a corrupt or hostile peer
// cannot make the process allocate unboundedly.

#include <string>
#include <string_view>

#include "util/status.h"

namespace mad {
namespace server {

/// Upper bound on a single frame's payload (64 MiB) — generous for dump
/// responses, small enough to bound per-connection memory.
inline constexpr size_t kMaxFrameBytes = 64u << 20;

/// Writes one frame, retrying on EINTR and short writes.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame into `*payload`. Returns true on a frame, false on clean
/// EOF before any header byte (peer closed between requests); any other
/// malformation or I/O failure is an error Status.
StatusOr<bool> ReadFrame(int fd, std::string* payload);

}  // namespace server
}  // namespace mad

#endif  // MAD_SERVER_WIRE_H_
