#include "util/crc32c.h"

#include <array>

namespace mad {
namespace util {

namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace util
}  // namespace mad
