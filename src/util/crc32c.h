#ifndef MAD_UTIL_CRC32C_H_
#define MAD_UTIL_CRC32C_H_

// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding every
// WAL record and checkpoint payload on disk. Software slice-by-one table
// implementation: the durability layer's framing overhead is dominated by
// fsync, so a hardware CRC would buy nothing measurable here, and the
// project takes no dependencies.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mad {
namespace util {

/// CRC-32C of `data` continuing from `seed` (pass 0 for a fresh checksum).
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

/// Masked form stored on disk (RocksDB-style rotation + offset): a CRC of
/// data that itself contains CRCs would otherwise be weakly correlated with
/// its contents, so stored checksums are masked and unmasked around the
/// comparison.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace util
}  // namespace mad

#endif  // MAD_UTIL_CRC32C_H_
