#ifndef MAD_UTIL_HASH_H_
#define MAD_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mad {

/// 64-bit mix step (splitmix64 finalizer); good avalanche for composing
/// field hashes without the clustering std::hash<int> exhibits on small keys.
inline uint64_t HashMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines an existing seed with the hash of one more value.
inline void HashCombine(size_t* seed, uint64_t v) {
  *seed = static_cast<size_t>(
      HashMix64(static_cast<uint64_t>(*seed) ^ HashMix64(v)));
}

/// Hashes a contiguous range of already-hashed 64-bit words.
inline size_t HashWords(const uint64_t* data, size_t n) {
  size_t seed = 0x2545f4914f6cdd1dULL ^ n;
  for (size_t i = 0; i < n; ++i) HashCombine(&seed, data[i]);
  return seed;
}

}  // namespace mad

#endif  // MAD_UTIL_HASH_H_
