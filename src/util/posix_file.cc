#include "util/posix_file.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace mad {
namespace util {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::Internal(
      StrPrintf("%s %s: %s", op, path.c_str(), std::strerror(errno)));
}

/// Writes exactly [data, data+n) to fd, retrying EINTR/short kernel writes.
/// The hook has already authorized these bytes; a kernel-level short write
/// is not a failure point we model, so it is retried like EINTR.
Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

IoHooks* DefaultIoHooks() {
  static IoHooks* hooks = new IoHooks();
  return hooks;
}

// ---------------------------------------------------------------------------
// AppendFile
// ---------------------------------------------------------------------------

AppendFile::~AppendFile() { Close(); }

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_),
      size_(other.size_),
      path_(std::move(other.path_)),
      hooks_(other.hooks_) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    hooks_ = other.hooks_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<AppendFile> AppendFile::Open(const std::string& path, IoHooks* hooks) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status s = Errno("fstat", path);
    ::close(fd);
    return s;
  }
  AppendFile f;
  f.fd_ = fd;
  f.size_ = static_cast<int64_t>(st.st_size);
  f.path_ = path;
  f.hooks_ = hooks != nullptr ? hooks : DefaultIoHooks();
  return f;
}

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::Internal("append on closed file " + path_);
  StatusOr<size_t> allowed = hooks_->BeforeWrite(path_, data.size());
  if (!allowed.ok()) return allowed.status();
  size_t n = std::min(*allowed, data.size());
  MAD_RETURN_IF_ERROR(WriteAll(fd_, data.data(), n, path_));
  size_ += static_cast<int64_t>(n);
  if (n < data.size()) {
    // Injected torn write: the permitted prefix is on disk, the rest of the
    // record never lands — exactly the state a crash mid-append leaves.
    return Status::Internal(StrPrintf(
        "injected short write on %s (%zu of %zu bytes)", path_.c_str(), n,
        data.size()));
  }
  return Status::OK();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return Status::Internal("sync on closed file " + path_);
  MAD_RETURN_IF_ERROR(hooks_->BeforeSync(path_));
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Whole-file and directory helpers
// ---------------------------------------------------------------------------

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      Status s = Errno("read", path);
      ::close(fd);
      return s;
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

namespace {

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       IoHooks* hooks) {
  if (hooks == nullptr) hooks = DefaultIoHooks();
  const std::string tmp = path + ".tmp";
  {
    // O_TRUNC: a leftover temp from an earlier crash is garbage by design.
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) return Errno("open", tmp);
    StatusOr<size_t> allowed = hooks->BeforeWrite(tmp, contents.size());
    Status st = allowed.ok() ? Status::OK() : allowed.status();
    size_t n = allowed.ok() ? std::min(*allowed, contents.size()) : 0;
    if (st.ok()) st = WriteAll(fd, contents.data(), n, tmp);
    if (st.ok() && n < contents.size()) {
      st = Status::Internal(StrPrintf("injected short write on %s (%zu of %zu"
                                      " bytes)",
                                      tmp.c_str(), n, contents.size()));
    }
    if (st.ok()) st = hooks->BeforeSync(tmp);
    if (st.ok() && ::fsync(fd) != 0) st = Errno("fsync", tmp);
    ::close(fd);
    if (!st.ok()) {
      ::unlink(tmp.c_str());
      return st;
    }
  }
  MAD_RETURN_IF_ERROR(hooks->BeforeRename(tmp, path));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return s;
  }
  return SyncDir(DirName(path));
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    if (!S_ISDIR(st.st_mode)) {
      return Status::InvalidArgument(path + " exists and is not a directory");
    }
    return Status::OK();
  }
  return Errno("mkdir", path);
}

StatusOr<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno("opendir", path);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    dirent* ent = ::readdir(dir);
    if (ent == nullptr) {
      if (errno != 0) {
        Status s = Errno("readdir", path);
        ::closedir(dir);
        return s;
      }
      break;
    }
    std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status SyncDir(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", path);
  Status st;
  if (::fsync(fd) != 0) st = Errno("fsync dir", path);
  ::close(fd);
  return st;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace util
}  // namespace mad
