#ifndef MAD_UTIL_POSIX_FILE_H_
#define MAD_UTIL_POSIX_FILE_H_

// Thin POSIX file layer for the durability subsystem, with one deliberate
// twist: every state-changing operation (write, fsync, rename) first passes
// through an injectable IoHooks seam. Production runs use the default
// pass-through hooks; the fault-injection tests substitute hooks that stop
// writing at an exact byte boundary (simulating a crash mid-append), fail
// renames (crash between checkpoint-write and publish), or report ENOSPC —
// so the recovery guarantees are *tested against every failure point*, not
// argued from inspection.
//
// Crash model: a hook that returns an error means "the process died here (or
// the disk refused the bytes)". Everything written before the failure point
// is on disk; nothing after it ever lands. AppendFile therefore performs at
// most one write(2) per hook consultation and never retries past an
// injected failure, so the bytes on disk match the simulated crash exactly.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mad {
namespace util {

/// Failpoint seam. The default implementation permits everything; tests
/// override. Hooks are consulted *before* the syscall; BeforeWrite may
/// permit a prefix of the buffer (short write followed by failure — the torn
/// record of a real crash). Instances must outlive every file using them and
/// be internally synchronized if shared across threads (the durability layer
/// only calls them from the single writer thread).
class IoHooks {
 public:
  virtual ~IoHooks() = default;

  /// Returns how many of `n` bytes may be written to `path`. A full return
  /// (== n) proceeds normally; a short return writes that prefix and then
  /// fails the operation with `error()`; an error Status writes nothing.
  virtual StatusOr<size_t> BeforeWrite(const std::string& path, size_t n) {
    (void)path;
    return n;
  }
  virtual Status BeforeSync(const std::string& path) {
    (void)path;
    return Status::OK();
  }
  virtual Status BeforeRename(const std::string& from, const std::string& to) {
    (void)from;
    (void)to;
    return Status::OK();
  }
};

/// The process-wide pass-through instance used when no hooks are supplied.
IoHooks* DefaultIoHooks();

/// Append-only file handle (the WAL segment primitive). Not thread-safe;
/// the durability layer serializes on the server's writer mutex.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Opens (creating if absent) for append. `hooks` may be null (defaults).
  static StatusOr<AppendFile> Open(const std::string& path, IoHooks* hooks);

  bool open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  /// Bytes successfully appended through this handle plus the size at open.
  int64_t size() const { return size_; }

  /// Appends `data`, honoring the hook seam. On failure the file holds
  /// exactly the permitted prefix (never retried past an injected fault).
  Status Append(std::string_view data);
  /// fsync(2) through the hook seam.
  Status Sync();
  void Close();

 private:
  int fd_ = -1;
  int64_t size_ = 0;
  std::string path_;
  IoHooks* hooks_ = nullptr;
};

/// Whole-file read (checkpoints, WAL segments are read-once at recovery).
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Crash-atomic publish: writes `<path>.tmp`, fsyncs it, renames over
/// `path`, fsyncs the containing directory. A crash at any point leaves
/// either the old file (or nothing) or the complete new file — never a
/// partial one. The temp file is unlinked on failure where possible.
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       IoHooks* hooks);

/// Directory helpers. EnsureDir creates one level (mkdir -p for the final
/// component only); ListDir returns entry names (no dot entries), sorted.
Status EnsureDir(const std::string& path);
StatusOr<std::vector<std::string>> ListDir(const std::string& path);
Status RemoveFile(const std::string& path);
/// fsync on a directory fd, making renames/unlinks in it durable.
Status SyncDir(const std::string& path);
bool FileExists(const std::string& path);

}  // namespace util
}  // namespace mad

#endif  // MAD_UTIL_POSIX_FILE_H_
