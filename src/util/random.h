#ifndef MAD_UTIL_RANDOM_H_
#define MAD_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace mad {

/// Deterministic RNG wrapper used by all workload generators and property
/// tests so that every experiment is reproducible from a printed seed.
class Random {
 public:
  explicit Random(uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(gen_);
  }

  /// Random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n) {
    std::vector<int> p(n);
    for (int i = 0; i < n; ++i) p[i] = i;
    for (int i = n - 1; i > 0; --i) {
      int j = static_cast<int>(Uniform(0, i));
      std::swap(p[i], p[j]);
    }
    return p;
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace mad

#endif  // MAD_UTIL_RANDOM_H_
