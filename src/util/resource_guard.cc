#include "util/resource_guard.h"

#include "util/string_util.h"

namespace mad {

const char* LimitKindName(LimitKind k) {
  switch (k) {
    case LimitKind::kNone:
      return "none";
    case LimitKind::kDeadline:
      return "deadline";
    case LimitKind::kTupleBudget:
      return "tuple-budget";
    case LimitKind::kMemoryBudget:
      return "memory-budget";
    case LimitKind::kRoundCap:
      return "round-cap";
    case LimitKind::kCancelled:
      return "cancelled";
  }
  return "?";
}

std::string ResourceGuard::Describe() const {
  LimitKind t = tripped();
  if (t == LimitKind::kNone) return "no limit tripped";
  return StrPrintf(
      "%s limit tripped after %.4fs, %lld derived tuples, %lld rounds",
      LimitKindName(t), elapsed_seconds(),
      static_cast<long long>(tuples_charged()),
      static_cast<long long>(rounds_charged()));
}

}  // namespace mad
