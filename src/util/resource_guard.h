#ifndef MAD_UTIL_RESOURCE_GUARD_H_
#define MAD_UTIL_RESOURCE_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace mad {

/// Cooperative cancellation flag. A caller holds the token (typically via the
/// shared_ptr in ResourceLimits) and may trip it from any thread; the
/// evaluator polls it at bounded granularity and winds down at the next
/// merge/round boundary. Cancellation is level-triggered and sticky until
/// Reset().
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  void Reset() { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Which resource limit stopped an evaluation early.
enum class LimitKind {
  kNone = 0,
  kDeadline,      ///< wall-clock deadline passed
  kTupleBudget,   ///< derived-tuple budget exhausted
  kMemoryBudget,  ///< approximate database size exceeded the byte budget
  kRoundCap,      ///< per-component or total fixpoint-round cap hit
  kCancelled,     ///< CancellationToken tripped by the caller
};

/// Stable human-readable name, e.g. "deadline".
const char* LimitKindName(LimitKind k);

/// Resource budgets for one evaluation (Engine::Run or Engine::Update).
/// Zero / unset fields mean "unlimited"; a default-constructed
/// ResourceLimits imposes nothing and costs nothing on the hot path.
///
/// For a monotone program any interrupted prefix of the fixpoint iteration
/// is ⊑-below the least model (T_P monotone on a complete lattice — the
/// paper's Proposition 3.3), so running out of a budget degrades the run to
/// a *certified under-approximation* instead of an error; see
/// core::Completeness.
struct ResourceLimits {
  /// Wall-clock budget, measured on the monotonic clock from the moment the
  /// evaluation starts.
  std::optional<std::chrono::steady_clock::duration> deadline;
  /// Cap on fixpoint rounds within any single component (0 = unlimited).
  /// Unlike EvalOptions::max_iterations this produces a Completeness
  /// verdict, not just a reached_fixpoint flag.
  int64_t max_rounds_per_component = 0;
  /// Cap on fixpoint rounds summed over all components (0 = unlimited).
  int64_t max_total_rounds = 0;
  /// Cap on head tuples derived (pre-merge, summed over rules and rounds).
  int64_t max_derived_tuples = 0;
  /// Approximate cap on bytes held by the result database (0 = unlimited).
  int64_t max_memory_bytes = 0;
  /// Cooperative cancellation; may be tripped from another thread.
  std::shared_ptr<CancellationToken> cancellation;
  /// Deadline/cancellation are polled once per this many charged tuples
  /// (and at every round boundary), bounding both staleness and clock-read
  /// overhead.
  int64_t check_interval = 1024;

  bool HasAnyLimit() const {
    return deadline.has_value() || max_rounds_per_component > 0 ||
           max_total_rounds > 0 || max_derived_tuples > 0 ||
           max_memory_bytes > 0 || cancellation != nullptr;
  }

  /// Convenience: limits with only a wall-clock deadline.
  static ResourceLimits Deadline(std::chrono::steady_clock::duration d) {
    ResourceLimits l;
    l.deadline = d;
    return l;
  }
};

/// Budget accounting for one evaluation. Constructed at evaluation start
/// (fixing the monotonic-clock deadline), consulted by the evaluator at
/// bounded granularity. All Charge*/Poll calls are cheap when no limits are
/// set (one predictable branch) and sticky once a limit trips: every
/// subsequent call reports the same LimitKind so control can unwind at the
/// next boundary without re-deriving the verdict.
///
/// Thread-safe: counters are relaxed atomics (they are budgets, not
/// happens-before edges) and the trip flag is set by a single
/// compare-exchange, so exactly one LimitKind wins even when several workers
/// blow different budgets in the same instant. The budget checks themselves
/// are best-effort under concurrency — a budget may be overshot by at most
/// one in-flight batch per worker — which is the same boundary-granularity
/// contract the serial evaluator already had.
class ResourceGuard {
 public:
  using Clock = std::chrono::steady_clock;

  /// A guard with no limits; every check is a no-op.
  ResourceGuard() = default;

  explicit ResourceGuard(const ResourceLimits& limits)
      : limits_(limits), active_(limits.HasAnyLimit()), start_(Clock::now()) {
    if (limits_.deadline.has_value()) {
      deadline_ = start_ + *limits_.deadline;
    }
    if (limits_.check_interval <= 0) limits_.check_interval = 1;
  }

  bool active() const { return active_; }
  bool memory_limited() const { return active_ && limits_.max_memory_bytes > 0; }

  /// Accounts `n` derived tuples. Polls deadline/cancellation once per
  /// `check_interval` charged tuples. Callable from any pool participant.
  LimitKind ChargeTuples(int64_t n) {
    if (!active_) return LimitKind::kNone;
    LimitKind t = tripped();
    if (t != LimitKind::kNone) return t;
    int64_t total = tuples_.fetch_add(n, std::memory_order_relaxed) + n;
    if (limits_.max_derived_tuples > 0 && total > limits_.max_derived_tuples) {
      return Trip(LimitKind::kTupleBudget);
    }
    int64_t since = since_poll_.fetch_add(n, std::memory_order_relaxed) + n;
    if (since < limits_.check_interval) return LimitKind::kNone;
    // Benign race: two workers may both reset and both poll — that only
    // polls more often than required, never less per charged interval.
    since_poll_.store(0, std::memory_order_relaxed);
    return Poll();
  }

  /// Accounts one fixpoint round of a component currently at
  /// `component_rounds` rounds. Rounds are coarse, so this always polls.
  LimitKind ChargeRound(int64_t component_rounds) {
    if (!active_) return LimitKind::kNone;
    LimitKind t = tripped();
    if (t != LimitKind::kNone) return t;
    int64_t total = total_rounds_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (limits_.max_rounds_per_component > 0 &&
        component_rounds > limits_.max_rounds_per_component) {
      return Trip(LimitKind::kRoundCap);
    }
    if (limits_.max_total_rounds > 0 && total > limits_.max_total_rounds) {
      return Trip(LimitKind::kRoundCap);
    }
    return Poll();
  }

  /// Reports the caller-measured approximate database size. Call only at
  /// merge granularity and only when memory_limited().
  LimitKind ChargeMemory(int64_t approx_bytes) {
    if (!active_) return LimitKind::kNone;
    LimitKind t = tripped();
    if (t != LimitKind::kNone) return t;
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (approx_bytes > peak &&
           !peak_bytes_.compare_exchange_weak(peak, approx_bytes,
                                              std::memory_order_relaxed)) {
    }
    if (limits_.max_memory_bytes > 0 &&
        approx_bytes > limits_.max_memory_bytes) {
      return Trip(LimitKind::kMemoryBudget);
    }
    return LimitKind::kNone;
  }

  /// Unconditional deadline + cancellation check.
  LimitKind Poll() {
    if (!active_) return LimitKind::kNone;
    LimitKind t = tripped();
    if (t != LimitKind::kNone) return t;
    if (limits_.cancellation != nullptr && limits_.cancellation->cancelled()) {
      return Trip(LimitKind::kCancelled);
    }
    if (deadline_.has_value() && Clock::now() >= *deadline_) {
      return Trip(LimitKind::kDeadline);
    }
    return LimitKind::kNone;
  }

  /// The limit that stopped this evaluation, or kNone. Sticky. Acquire pairs
  /// with the release in Trip so the tripping worker's writes are visible.
  LimitKind tripped() const {
    return tripped_.load(std::memory_order_acquire);
  }

  int64_t tuples_charged() const {
    return tuples_.load(std::memory_order_relaxed);
  }
  int64_t rounds_charged() const {
    return total_rounds_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// One-line diagnosis of the tripped limit (for Status messages).
  std::string Describe() const;

 private:
  /// First caller wins; later trips (even for a different limit) report the
  /// already-recorded kind so the whole evaluation agrees on one verdict.
  LimitKind Trip(LimitKind k) {
    LimitKind expected = LimitKind::kNone;
    if (tripped_.compare_exchange_strong(expected, k,
                                         std::memory_order_acq_rel)) {
      return k;
    }
    return expected;
  }

  ResourceLimits limits_;
  bool active_ = false;
  Clock::time_point start_{};
  std::optional<Clock::time_point> deadline_;
  std::atomic<LimitKind> tripped_{LimitKind::kNone};
  std::atomic<int64_t> tuples_{0};
  std::atomic<int64_t> total_rounds_{0};
  std::atomic<int64_t> since_poll_{0};
  std::atomic<int64_t> peak_bytes_{0};
};

}  // namespace mad

#endif  // MAD_UTIL_RESOURCE_GUARD_H_
