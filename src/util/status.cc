#include "util/status.h"

namespace mad {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAnalysisError:
      return "AnalysisError";
    case StatusCode::kCostConsistencyViolation:
      return "CostConsistencyViolation";
    case StatusCode::kFixpointNotReached:
      return "FixpointNotReached";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDurabilityDegraded:
      return "DurabilityDegraded";
    case StatusCode::kReplicaLagging:
      return "ReplicaLagging";
    case StatusCode::kNotPrimary:
      return "NotPrimary";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mad
