#ifndef MAD_UTIL_STATUS_H_
#define MAD_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mad {

/// Error categories used across the library. The set is deliberately small:
/// callers almost always either propagate or print.
enum class StatusCode {
  kOk = 0,
  /// Malformed input to a public API (bad arity, unknown predicate, ...).
  kInvalidArgument,
  /// Textual program failed to parse.
  kParseError,
  /// A static check (range restriction, admissibility, ...) rejected the
  /// program.
  kAnalysisError,
  /// Evaluation detected a cost-consistency violation (Definition 2.6).
  kCostConsistencyViolation,
  /// Evaluation hit its iteration budget before reaching a fixpoint
  /// (T_P monotone but not continuous, Section 6.2 / Example 5.1).
  kFixpointNotReached,
  /// Looked-up entity does not exist.
  kNotFound,
  /// A resource limit (deadline, budget, cancellation — see
  /// ResourceLimits) stopped the evaluation before completion *and* the
  /// interrupted state could not be certified as a sound
  /// under-approximation. Certified partial runs return OK with
  /// Completeness::kUnderApproximation instead.
  kResourceExhausted,
  /// Internal invariant violated; indicates a bug in the library.
  kInternal,
  /// Transient transport-level failure (connection refused/reset, peer gone
  /// mid-exchange). Safe to retry: madd requests are idempotent — reads pin
  /// snapshots and inserts are lattice joins, so re-sending cannot
  /// double-apply.
  kUnavailable,
  /// The durability layer can no longer persist writes (disk full, I/O
  /// failure on the WAL). Writes are rejected to avoid acknowledging
  /// updates that would not survive a crash; reads keep serving the last
  /// sound snapshot.
  kDurabilityDegraded,
  /// A read carrying a `min_epoch` token reached a replica whose applied
  /// epoch is still behind it, and the wait deadline expired. The client
  /// may retry here (the replica only moves up in ⊑) or read the primary.
  kReplicaLagging,
  /// A write verb reached a read replica. The response carries a redirect
  /// to the primary; nothing was applied.
  kNotPrimary,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A lightweight Arrow/RocksDB-style status object. The library never throws;
/// all fallible public entry points return Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AnalysisError(std::string msg) {
    return Status(StatusCode::kAnalysisError, std::move(msg));
  }
  static Status CostConsistencyViolation(std::string msg) {
    return Status(StatusCode::kCostConsistencyViolation, std::move(msg));
  }
  static Status FixpointNotReached(std::string msg) {
    return Status(StatusCode::kFixpointNotReached, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DurabilityDegraded(std::string msg) {
    return Status(StatusCode::kDurabilityDegraded, std::move(msg));
  }
  static Status ReplicaLagging(std::string msg) {
    return Status(StatusCode::kReplicaLagging, std::move(msg));
  }
  static Status NotPrimary(std::string msg) {
    return Status(StatusCode::kNotPrimary, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value or an error Status. Accessing the value of a non-OK
/// StatusOr is a programming error (checked by assert in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit conversions from both T and Status keep call sites terse.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mad

/// Propagates a non-OK Status from the current function. Expands to a single
/// statement (do/while(0)), so it is safe directly under an unbraced if/else
/// and never steals a caller's dangling `else`.
#define MAD_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::mad::Status _mad_status_tmp = (expr);       \
    if (!_mad_status_tmp.ok()) return _mad_status_tmp; \
  } while (0)

#define MAD_CONCAT_IMPL(a, b) a##b
#define MAD_CONCAT(a, b) MAD_CONCAT_IMPL(a, b)

/// Evaluates a StatusOr expression; on error returns the Status, otherwise
/// moves the value into `lhs` (which may include a declaration).
///
/// Because `lhs` may declare a variable that must outlive the macro, the
/// expansion is necessarily multiple statements and therefore REQUIRES a
/// braced scope. The expansion is hardened so that misuse as the direct
/// substatement of an unbraced `if`/`else`/loop fails to compile (the
/// temporary's uses land outside the implicit block that holds its
/// declaration) instead of silently executing the tail unconditionally, and
/// the internal error check is wrapped in do/while(0) so it can never
/// capture a caller's `else`. Distinct temporaries come from __COUNTER__,
/// so two invocations may share a source line (e.g. inside another macro).
#define MAD_ASSIGN_OR_RETURN(lhs, expr) \
  MAD_ASSIGN_OR_RETURN_IMPL(MAD_CONCAT(_mad_statusor_, __COUNTER__), lhs, expr)

#define MAD_ASSIGN_OR_RETURN_IMPL(statusor, lhs, expr) \
  auto statusor = (expr);                              \
  do {                                                 \
    if (!statusor.ok()) return statusor.status();      \
  } while (0);                                         \
  lhs = std::move(statusor).value()

#endif  // MAD_UTIL_STATUS_H_
