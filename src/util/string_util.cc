#include "util/string_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace mad {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace mad
