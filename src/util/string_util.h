#ifndef MAD_UTIL_STRING_UTIL_H_
#define MAD_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace mad {

/// Joins `parts` with `sep` ("a", "b" -> "a, b" for sep ", ").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double compactly: integers print without a trailing ".0",
/// infinities print as "inf"/"-inf".
std::string FormatDouble(double v);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace mad

#endif  // MAD_UTIL_STRING_UTIL_H_
