#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

namespace mad {

void TablePrinter::AddRow(std::vector<std::string> row) {
  // Diagnostics code often builds rows while reporting some other failure;
  // a malformed row must render degraded, never abort. Short rows are padded
  // with empty cells; long rows fold the overflow into the last column so
  // no data is silently dropped.
  if (row.size() > headers_.size() && !headers_.empty()) {
    std::string overflow;
    for (size_t c = headers_.size(); c < row.size(); ++c) {
      overflow += " | " + row[c];
    }
    row.resize(headers_.size());
    row.back() += overflow;
  }
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace mad
