#ifndef MAD_UTIL_TABLE_PRINTER_H_
#define MAD_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace mad {

/// Renders aligned, pipe-separated result tables. All benchmark harnesses
/// print their experiment rows through this so EXPERIMENTS.md can quote the
/// output verbatim.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds one row. Rows shorter than the header are padded with empty
  /// cells; longer rows fold the extra cells into the last column. The
  /// printer is used on error-reporting paths, so it degrades instead of
  /// asserting.
  void AddRow(std::vector<std::string> row);

  /// Writes the whole table, with a header rule, to `os`.
  void Print(std::ostream& os) const;

  /// Renders to a string (used by tests).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mad

#endif  // MAD_UTIL_TABLE_PRINTER_H_
