#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace mad {

namespace {

/// Which pool (if any) the current thread belongs to, and its slot. A worker
/// thread belongs to exactly one pool for its whole life, so a plain pair of
/// thread-locals suffices; threads outside any pool read a null pool and are
/// treated as participant 0 of whatever pool they call into.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_participant = 0;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int participants = std::max(1, num_threads);
  deques_.reserve(participants);
  for (int i = 0; i < participants; ++i) {
    deques_.push_back(std::make_unique<WorkDeque>());
  }
  workers_.reserve(participants - 1);
  for (int i = 1; i < participants; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::ParticipantId() const {
  return tls_pool == this ? tls_participant : 0;
}

void ThreadPool::Push(int participant, std::function<void()> task) {
  WorkDeque& d = *deques_[participant];
  std::lock_guard<std::mutex> lk(d.mu);
  d.tasks.push_back(std::move(task));
}

bool ThreadPool::RunOneTask(int participant) {
  const int p = num_participants();
  // Own deque first, newest task (LIFO keeps the working set warm).
  {
    WorkDeque& own = *deques_[participant];
    std::unique_lock<std::mutex> lk(own.mu);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.back());
      own.tasks.pop_back();
      lk.unlock();
      task();
      return true;
    }
  }
  // Steal the oldest task of the first non-empty victim (FIFO: the oldest
  // range is the one least likely to be mid-claim by its owner).
  for (int k = 1; k < p; ++k) {
    WorkDeque& victim = *deques_[(participant + k) % p];
    std::unique_lock<std::mutex> lk(victim.mu);
    if (victim.tasks.empty()) continue;
    std::function<void()> task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    lk.unlock();
    task();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int participant) {
  tls_pool = this;
  tls_participant = participant;
  while (true) {
    if (RunOneTask(participant)) continue;
    std::unique_lock<std::mutex> lk(wake_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    // Timed wait: a notify can land between RunOneTask and the wait, so the
    // timeout bounds the staleness instead of a fragile predicate recheck of
    // every deque under every lock.
    wake_cv_.wait_for(lk, std::chrono::milliseconds(20));
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int, int64_t)>& body) {
  if (n <= 0) return;
  const int p = num_participants();
  const int self = ParticipantId();
  if (p == 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) body(self, i);
    return;
  }

  struct Batch {
    std::atomic<int64_t> remaining;
  };
  auto batch = std::make_shared<Batch>();
  batch->remaining.store(n, std::memory_order_relaxed);

  // Several ranges per participant so that stealing can still rebalance
  // after the initial round-robin scatter.
  const int64_t pieces = std::min<int64_t>(n, 4 * p);
  for (int64_t k = 0; k < pieces; ++k) {
    const int64_t lo = n * k / pieces;
    const int64_t hi = n * (k + 1) / pieces;
    auto task = [this, batch, &body, lo, hi] {
      const ThreadPool* saved_pool = tls_pool;
      const int runner =
          saved_pool == this ? tls_participant : 0;  // creator thread is 0
      for (int64_t i = lo; i < hi; ++i) body(runner, i);
      if (batch->remaining.fetch_sub(hi - lo, std::memory_order_acq_rel) ==
          hi - lo) {
        std::lock_guard<std::mutex> lk(wake_mu_);
        wake_cv_.notify_all();
      }
    };
    Push((self + static_cast<int>(k % p)) % p, std::move(task));
  }
  wake_cv_.notify_all();

  // Drain until this batch is complete. The loop may execute tasks from
  // other batches (nested ParallelFor on sibling work) — that only advances
  // the global computation.
  while (batch->remaining.load(std::memory_order_acquire) > 0) {
    if (RunOneTask(self)) continue;
    std::unique_lock<std::mutex> lk(wake_mu_);
    if (batch->remaining.load(std::memory_order_acquire) == 0) break;
    wake_cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
}

}  // namespace mad
