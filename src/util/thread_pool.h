#ifndef MAD_UTIL_THREAD_POOL_H_
#define MAD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mad {

/// A small work-stealing thread pool for the parallel evaluator (no external
/// dependencies). A pool of `num_threads` *participants* owns
/// `num_threads - 1` OS threads: the thread that calls ParallelFor always
/// participates as well, so a pool of 1 spawns nothing and runs everything
/// inline — the serial fast path costs one branch.
///
/// Scheduling discipline: every participant owns a deque of tasks. A
/// participant looking for work pops from the *back* of its own deque (LIFO,
/// cache-warm) and, when that is empty, steals from the *front* of another
/// participant's deque (FIFO — the oldest, typically largest piece of work).
/// ParallelFor splits its iteration space into several contiguous range
/// tasks per participant and scatters them round-robin across the deques;
/// imbalance between items then migrates between threads through stealing
/// rather than through any per-item locking.
///
/// Nesting is supported and is how SCC pipelining composes with parallel
/// rounds: a range task may itself call ParallelFor on the same pool. The
/// waiting participant keeps draining tasks (its own, then stolen) until its
/// batch completes, so a pool thread is never parked while runnable work
/// exists, and the caller's own drain loop guarantees progress even when
/// every worker is busy elsewhere — ParallelFor cannot deadlock.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` participants (min 1); spawns
  /// `num_threads - 1` workers.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. All ParallelFor calls must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Workers plus the calling thread.
  int num_participants() const { return static_cast<int>(deques_.size()); }

  /// Runs `body(participant, i)` for every i in [0, n), distributed across
  /// the pool; blocks until all n items completed. `participant` is the
  /// stable id (0 .. num_participants()-1) of the thread executing the item:
  /// a given participant runs at most one item at a time, so per-participant
  /// scratch state (executors, buffers) needs no synchronization. Item order
  /// within a participant is ascending within each stolen range, but the
  /// assignment of ranges to participants is nondeterministic.
  void ParallelFor(int64_t n, const std::function<void(int, int64_t)>& body);

  /// The participant id of the current thread in this pool: workers report
  /// their slot, every other thread (including the pool's creator) reports 0.
  int ParticipantId() const;

 private:
  struct WorkDeque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int participant);
  /// Pops one task (own back, else steal another front) and runs it.
  bool RunOneTask(int participant);
  void Push(int participant, std::function<void()> task);

  std::vector<std::unique_ptr<WorkDeque>> deques_;  ///< one per participant
  std::vector<std::thread> workers_;                ///< participants 1..P-1
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace mad

#endif  // MAD_UTIL_THREAD_POOL_H_
