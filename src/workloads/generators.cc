#include "workloads/generators.h"

#include <algorithm>
#include <set>

namespace mad {
namespace workloads {

Graph RandomGraph(int n, int num_edges, WeightRange weights, Random* rng) {
  Graph g;
  g.Resize(n);
  std::set<std::pair<int, int>> seen;
  int attempts = 0;
  while (static_cast<int>(seen.size()) < num_edges &&
         attempts < num_edges * 20) {
    ++attempts;
    int u = static_cast<int>(rng->Uniform(0, n - 1));
    int v = static_cast<int>(rng->Uniform(0, n - 1));
    if (!seen.insert({u, v}).second) continue;
    g.AddEdge(u, v, rng->UniformReal(weights.lo, weights.hi));
  }
  return g;
}

Graph GridGraph(int width, int height, WeightRange weights, Random* rng) {
  Graph g;
  g.Resize(width * height);
  auto id = [&](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) {
        g.AddEdge(id(x, y), id(x + 1, y),
                  rng->UniformReal(weights.lo, weights.hi));
      }
      if (y + 1 < height) {
        g.AddEdge(id(x, y), id(x, y + 1),
                  rng->UniformReal(weights.lo, weights.hi));
      }
    }
  }
  return g;
}

Graph CycleGraph(int n, int extra_chords, WeightRange weights, Random* rng) {
  Graph g;
  g.Resize(n);
  for (int i = 0; i < n; ++i) {
    g.AddEdge(i, (i + 1) % n, rng->UniformReal(weights.lo, weights.hi));
  }
  for (int i = 0; i < extra_chords; ++i) {
    int u = static_cast<int>(rng->Uniform(0, n - 1));
    int v = static_cast<int>(rng->Uniform(0, n - 1));
    g.AddEdge(u, v, rng->UniformReal(weights.lo, weights.hi));
  }
  return g;
}

Graph LayeredDag(int layers, int width, int edges_per_node,
                 WeightRange weights, Random* rng) {
  Graph g;
  g.Resize(layers * width);
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      int from = layer * width + i;
      for (int e = 0; e < edges_per_node; ++e) {
        int to = (layer + 1) * width +
                 static_cast<int>(rng->Uniform(0, width - 1));
        g.AddEdge(from, to, rng->UniformReal(weights.lo, weights.hi));
      }
    }
  }
  return g;
}

Graph WithNegativeWeights(const Graph& g, double p, Random* rng) {
  Graph out = g;
  for (auto& edges : out.adj) {
    for (Graph::Edge& e : edges) {
      if (rng->Bernoulli(p)) e.weight = -e.weight;
    }
  }
  return out;
}

OwnershipNetwork RandomOwnership(int n, int max_owners, double chain_fraction,
                                 Random* rng) {
  OwnershipNetwork net;
  net.Resize(n);
  int chained = static_cast<int>(n * chain_fraction);
  for (int y = 0; y < n; ++y) {
    if (y + 1 < n && y < chained) {
      // Deliberate control chain: company y owns 60% of company y+1.
      net.shares[y][y + 1] = 0.6;
      continue;
    }
    // Split up to 100% of y's shares among random owners.
    double remaining = 1.0;
    int owners = static_cast<int>(rng->Uniform(1, max_owners));
    for (int k = 0; k < owners && remaining > 0.01; ++k) {
      int x = static_cast<int>(rng->Uniform(0, n - 1));
      if (x == y) continue;
      double fraction = rng->UniformReal(0.05, remaining * 0.8);
      net.shares[x][y] += fraction;
      remaining -= fraction;
    }
  }
  return net;
}

Circuit RandomCircuit(int num_inputs, int num_gates, int max_fanin,
                      double feedback_fraction, Random* rng) {
  Circuit c;
  c.num_inputs = num_inputs;
  c.num_wires = num_inputs + num_gates;
  c.input_values.resize(num_inputs);
  for (int i = 0; i < num_inputs; ++i) c.input_values[i] = rng->Bernoulli(0.5);
  for (int gi = 0; gi < num_gates; ++gi) {
    Circuit::Gate g;
    g.type = rng->Bernoulli(0.5) ? Circuit::GateType::kAnd
                                 : Circuit::GateType::kOr;
    g.output_wire = num_inputs + gi;
    int fanin = static_cast<int>(rng->Uniform(1, max_fanin));
    std::set<int> inputs;
    for (int k = 0; k < fanin; ++k) {
      // Feed-forward input: any earlier wire (input or earlier gate).
      inputs.insert(static_cast<int>(rng->Uniform(0, num_inputs + gi - 1)));
    }
    if (rng->Bernoulli(feedback_fraction) && gi + 1 < num_gates) {
      // Feedback input from a later gate: creates a cycle.
      inputs.insert(num_inputs +
                    static_cast<int>(rng->Uniform(gi + 1, num_gates - 1)));
    }
    g.input_wires.assign(inputs.begin(), inputs.end());
    c.gates.push_back(std::move(g));
  }
  return c;
}

PartyInstance RandomParty(int n, double avg_degree, int max_requirement,
                          double symmetry, Random* rng) {
  PartyInstance p;
  p.num_people = n;
  p.threshold.resize(n);
  p.knows.assign(n, {});
  std::set<std::pair<int, int>> edges;
  int target = static_cast<int>(n * avg_degree);
  int attempts = 0;
  while (static_cast<int>(edges.size()) < target && attempts < target * 20) {
    ++attempts;
    int a = static_cast<int>(rng->Uniform(0, n - 1));
    int b = static_cast<int>(rng->Uniform(0, n - 1));
    if (a == b) continue;
    if (edges.insert({a, b}).second) p.knows[a].push_back(b);
    if (rng->Bernoulli(symmetry) && edges.insert({b, a}).second) {
      p.knows[b].push_back(a);
    }
  }
  for (int i = 0; i < n; ++i) {
    p.threshold[i] = static_cast<int>(rng->Uniform(0, max_requirement));
  }
  return p;
}

}  // namespace workloads
}  // namespace mad
