#ifndef MAD_WORKLOADS_GENERATORS_H_
#define MAD_WORKLOADS_GENERATORS_H_

#include "baselines/circuit_sim.h"
#include "baselines/company_control.h"
#include "baselines/graph.h"
#include "baselines/party_solver.h"
#include "util/random.h"

namespace mad {
namespace workloads {

using baselines::Circuit;
using baselines::Graph;
using baselines::OwnershipNetwork;
using baselines::PartyInstance;

// ---------------------------------------------------------------------------
// Graphs (shortest-path experiments, E2.6/E3.1/S5/S6.2)
// ---------------------------------------------------------------------------

/// Weight range for generated edges.
struct WeightRange {
  double lo = 1.0;
  double hi = 10.0;
};

/// Erdős–Rényi-style digraph: n nodes, `num_edges` distinct random edges
/// (self loops allowed — the paper's Example 3.1 graph has one).
Graph RandomGraph(int n, int num_edges, WeightRange weights, Random* rng);

/// Directed grid (edges right and down): acyclic, modularly stratified —
/// the friendly case for Kemp–Stuckey-style semantics.
Graph GridGraph(int width, int height, WeightRange weights, Random* rng);

/// A single directed cycle 0 -> 1 -> ... -> n-1 -> 0 plus `extra` chords:
/// maximally hostile to fully-defined-before-aggregate semantics.
Graph CycleGraph(int n, int extra_chords, WeightRange weights, Random* rng);

/// Layered DAG: `layers` layers of `width` nodes, edges only forward.
Graph LayeredDag(int layers, int width, int edges_per_node,
                 WeightRange weights, Random* rng);

/// Copies `g` and negates (multiplies by -1) each edge weight with
/// probability `p` — the Section 5.4 case where greedy/GGZ evaluation is
/// outside its envelope but the monotone semantics still applies.
Graph WithNegativeWeights(const Graph& g, double p, Random* rng);

// ---------------------------------------------------------------------------
// Ownership networks (company control, E2.7)
// ---------------------------------------------------------------------------

/// Random ownership network of `n` companies. Each company's shares are
/// split among up to `max_owners` random owners; `chain_fraction` of the
/// companies are wired into deliberate control chains (x owns 60% of x+1)
/// so that recursive control actually kicks in.
OwnershipNetwork RandomOwnership(int n, int max_owners, double chain_fraction,
                                 Random* rng);

// ---------------------------------------------------------------------------
// Circuits (E4.4)
// ---------------------------------------------------------------------------

/// Random circuit with `num_inputs` primary inputs and `num_gates` AND/OR
/// gates of fan-in up to `max_fanin`. `feedback_fraction` of the gates get
/// one extra input wired to a *later* gate's output, creating cycles.
Circuit RandomCircuit(int num_inputs, int num_gates, int max_fanin,
                      double feedback_fraction, Random* rng);

// ---------------------------------------------------------------------------
// Party instances (E4.3)
// ---------------------------------------------------------------------------

/// Random knows-graph with `avg_degree`, thresholds uniform in
/// [0, max_requirement]. Cyclic by construction (knows is symmetrized with
/// probability `symmetry`).
PartyInstance RandomParty(int n, double avg_degree, int max_requirement,
                          double symmetry, Random* rng);

}  // namespace workloads
}  // namespace mad

#endif  // MAD_WORKLOADS_GENERATORS_H_
