#ifndef MAD_WORKLOADS_PROGRAMS_H_
#define MAD_WORKLOADS_PROGRAMS_H_

namespace mad {
namespace workloads {

/// Canonical rule texts for the paper's example programs. Tests, benchmarks
/// and examples all share these, so the exact programs being measured are in
/// one place.

/// Example 2.6 — shortest paths, with the paper's `direct` marker and
/// integrity constraint.
inline constexpr const char* kShortestPathProgram = R"mdl(
// Example 2.6 (Ross & Sagiv 1992): shortest paths via recursion through min.
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
)mdl";

/// Example 2.7 — company control (recursion through sum).
inline constexpr const char* kCompanyControlProgram = R"mdl(
// Example 2.7: X controls Y when X's direct and controlled shares exceed 50%.
.decl s(owner, co, n: sum_real)
.decl cv(owner, via, co, n: sum_real)
.decl m(owner, co, n: sum_real)
.decl c(owner, co)
cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
m(X, Y, N) :- N =r sum M : cv(X, Z, Y, M).
c(X, Y) :- m(X, Y, N), N > 0.5.
)mdl";

/// The r-monotonic rewrite of company control from Section 5.2 (Mumick et
/// al.): the aggregate value never reaches a head, so the program is
/// r-monotonic, unlike the original formulation.
inline constexpr const char* kCompanyControlRMonotonic = R"mdl(
.decl s(owner, co, n: sum_real)
.decl cv(owner, via, co, n: sum_real)
.decl c(owner, co)
cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
c(X, Y) :- N =r sum M : cv(X, Z, Y, M), N > 0.5.
)mdl";

/// Example 4.3 — party invitations ("=" count aggregate, non-monotone K
/// comparison that Definition 4.4 nevertheless admits).
inline constexpr const char* kPartyProgram = R"mdl(
// Example 4.3: guests commit once enough acquaintances have committed.
.decl requires(person, k: count_nat)
.decl knows(a, b)
.decl coming(person)
.decl kc(a, b)
coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
kc(X, Y) :- knows(X, Y), coming(Y).
)mdl";

/// Example 4.4 — circuit evaluation with a default-value cost predicate and
/// the pseudo-monotonic AND aggregate.
inline constexpr const char* kCircuitProgram = R"mdl(
// Example 4.4: cyclic circuits of AND/OR gates, minimal behaviour.
.decl gate(g, type)
.decl connect(g, w)
.decl input(w, v: bool_or)
.decl t(w, v: bool_or) default
.constraint gate(G, or), gate(G, and).
.constraint input(W, C), gate(W, T).
t(W, C) :- input(W, C).
t(G, C) :- gate(G, or), C = or D : (connect(G, W), t(W, D)).
t(G, C) :- gate(G, and), C = and D : (connect(G, W), t(W, D)).
)mdl";

/// Example 5.1 — halfsum: T_P monotonic but not continuous; the least
/// fixpoint p(a, 1) is only reached in the limit.
inline constexpr const char* kHalfsumProgram = R"mdl(
// Example 5.1: requires iteration beyond any finite stage (use epsilon).
.decl p(x, c: sum_real)
p(a, C) :- C =r halfsum D : p(X, D).
p(b, 1).
)mdl";

/// Figure 1 row 9 (union over 2^S) exercised through recursion: label
/// propagation over a graph. Structured like the circuit example — one
/// default-value set lattice predicate, sources excluded from aggregated
/// nodes by an integrity constraint.
inline constexpr const char* kLabelFlowProgram = R"mdl(
// Label-flow: every node accumulates the union of the labels of everything
// that feeds it, starting from initial label sets at source nodes.
.decl node(x)
.decl feeds(x, y)
.decl init(x, s: set_union)
.decl label(x, s: set_union) default
.constraint init(X, S), node(X).
label(X, S) :- init(X, S).
label(Y, S) :- node(Y), S = union E : (feeds(X, Y), label(X, E)).
)mdl";

}  // namespace workloads
}  // namespace mad

#endif  // MAD_WORKLOADS_PROGRAMS_H_
