#include "workloads/to_datalog.h"

#include "util/string_util.h"

namespace mad {
namespace workloads {

using datalog::Fact;
using datalog::PredicateInfo;
using datalog::Value;

namespace {

StatusOr<const PredicateInfo*> Pred(const Program& program,
                                    const char* name) {
  const PredicateInfo* p = program.FindPredicate(name);
  if (p == nullptr) {
    return Status::InvalidArgument(
        StrPrintf("program does not declare predicate '%s'", name));
  }
  return p;
}

}  // namespace

Status AddGraphFacts(const Program& program, const Graph& g, Database* db) {
  MAD_ASSIGN_OR_RETURN(const PredicateInfo* arc, Pred(program, "arc"));
  for (int u = 0; u < g.num_nodes; ++u) {
    Value from = Value::Symbol(Graph::NodeName(u));
    for (const Graph::Edge& e : g.adj[u]) {
      Fact f;
      f.pred = arc;
      f.key = {from, Value::Symbol(Graph::NodeName(e.to))};
      f.cost = Value::Real(e.weight);
      MAD_RETURN_IF_ERROR(db->AddFact(f));
    }
  }
  return Status::OK();
}

Status AddOwnershipFacts(const Program& program, const OwnershipNetwork& net,
                         Database* db) {
  MAD_ASSIGN_OR_RETURN(const PredicateInfo* s, Pred(program, "s"));
  for (int x = 0; x < net.num_companies; ++x) {
    Value owner = Value::Symbol(OwnershipNetwork::CompanyName(x));
    for (int y = 0; y < net.num_companies; ++y) {
      if (net.shares[x][y] <= 0) continue;
      Fact f;
      f.pred = s;
      f.key = {owner, Value::Symbol(OwnershipNetwork::CompanyName(y))};
      f.cost = Value::Real(net.shares[x][y]);
      MAD_RETURN_IF_ERROR(db->AddFact(f));
    }
  }
  return Status::OK();
}

Status AddCircuitFacts(const Program& program, const Circuit& c,
                       Database* db) {
  MAD_ASSIGN_OR_RETURN(const PredicateInfo* gate, Pred(program, "gate"));
  MAD_ASSIGN_OR_RETURN(const PredicateInfo* connect, Pred(program, "connect"));
  MAD_ASSIGN_OR_RETURN(const PredicateInfo* input, Pred(program, "input"));
  for (int i = 0; i < c.num_inputs; ++i) {
    Fact f;
    f.pred = input;
    f.key = {Value::Symbol(Circuit::WireName(i))};
    f.cost = Value::Real(c.input_values[i] ? 1.0 : 0.0);
    MAD_RETURN_IF_ERROR(db->AddFact(f));
  }
  for (const Circuit::Gate& g : c.gates) {
    Value name = Value::Symbol(Circuit::WireName(g.output_wire));
    Fact fg;
    fg.pred = gate;
    fg.key = {name, Value::Symbol(
                        g.type == Circuit::GateType::kAnd ? "and" : "or")};
    MAD_RETURN_IF_ERROR(db->AddFact(fg));
    for (int w : g.input_wires) {
      Fact fc;
      fc.pred = connect;
      fc.key = {name, Value::Symbol(Circuit::WireName(w))};
      MAD_RETURN_IF_ERROR(db->AddFact(fc));
    }
  }
  return Status::OK();
}

Status AddPartyFacts(const Program& program, const PartyInstance& p,
                     Database* db) {
  MAD_ASSIGN_OR_RETURN(const PredicateInfo* requires_pred,
                       Pred(program, "requires"));
  MAD_ASSIGN_OR_RETURN(const PredicateInfo* knows, Pred(program, "knows"));
  for (int i = 0; i < p.num_people; ++i) {
    Fact f;
    f.pred = requires_pred;
    f.key = {Value::Symbol(PartyInstance::PersonName(i))};
    f.cost = Value::Real(p.threshold[i]);
    MAD_RETURN_IF_ERROR(db->AddFact(f));
    for (int q : p.knows[i]) {
      Fact k;
      k.pred = knows;
      k.key = {Value::Symbol(PartyInstance::PersonName(i)),
               Value::Symbol(PartyInstance::PersonName(q))};
      MAD_RETURN_IF_ERROR(db->AddFact(k));
    }
  }
  return Status::OK();
}

}  // namespace workloads
}  // namespace mad
