#ifndef MAD_WORKLOADS_TO_DATALOG_H_
#define MAD_WORKLOADS_TO_DATALOG_H_

#include "datalog/ast.h"
#include "datalog/database.h"
#include "workloads/generators.h"

namespace mad {
namespace workloads {

using datalog::Database;
using datalog::Program;

/// Loads a graph as `arc(from, to, w)` facts into `db`. Node i is the
/// symbol "n<i>". The program must declare `arc` (the canonical programs in
/// programs.h do).
Status AddGraphFacts(const Program& program, const Graph& g, Database* db);

/// Loads an ownership network as `s(owner, company, fraction)` facts.
Status AddOwnershipFacts(const Program& program, const OwnershipNetwork& net,
                         Database* db);

/// Loads a circuit as gate/connect/input facts. Wire i is the symbol "w<i>";
/// a gate's output wire doubles as its name, as in Example 4.4.
Status AddCircuitFacts(const Program& program, const Circuit& c, Database* db);

/// Loads a party instance as requires/knows facts.
Status AddPartyFacts(const Program& program, const PartyInstance& p,
                     Database* db);

}  // namespace workloads
}  // namespace mad

#endif  // MAD_WORKLOADS_TO_DATALOG_H_
