// The semantic certification layer end-to-end: CertifyProgram verdicts,
// their integration into CheckProgram/ComponentVerdict, and the termination
// verdicts the certificates feed.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/absint/engine.h"
#include "analysis/checker.h"
#include "analysis/dependency_graph.h"
#include "core/engine.h"
#include "datalog/parser.h"

namespace mad {
namespace analysis {
namespace {

using absint::CertificateKind;

struct Certified {
  datalog::Program program;
  std::unique_ptr<DependencyGraph> graph;
  ProgramCheckResult check;
};

Certified Check(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  Certified out{std::move(p).value(), nullptr, {}};
  out.graph = std::make_unique<DependencyGraph>(out.program);
  out.check = CheckProgram(out.program, *out.graph);
  return out;
}

// The component (by head predicate name) a certificate belongs to.
const absint::ComponentCertificate* CertFor(const Certified& c,
                                            std::string_view pred) {
  const datalog::PredicateInfo* info = c.program.FindPredicate(pred);
  if (info == nullptr) return nullptr;
  int comp = c.graph->ComponentOf(info);
  return c.check.certificates.ForComponent(comp);
}

constexpr char kGuardedShortestPath[] = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), C1 >= 0, arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
arc(a, b, 1).
arc(b, b, 0).
arc(a, c, 5).
arc(c, b, 1).
arc(b, a, 10).
)";

TEST(CertificateTest, GuardedShortestPathIsSemanticallyCertified) {
  Certified c = Check(kGuardedShortestPath);
  const absint::ComponentCertificate* cert = CertFor(c, "s");
  ASSERT_NE(cert, nullptr);
  // Definition 4.5 rejects the C1 >= 0 guard...
  bool some_inadmissible = false;
  for (const ComponentVerdict& v : c.check.components) {
    if (v.index == cert->component_index) some_inadmissible = !v.monotonic;
  }
  EXPECT_TRUE(some_inadmissible)
      << "the guard should fail the syntactic polarity check";
  // ...but the interval fixpoint discharges it.
  EXPECT_EQ(cert->kind, CertificateKind::kSemanticallyMonotonic)
      << cert->reason;
  // And the program is accepted for evaluation on the strength of it.
  EXPECT_TRUE(c.check.overall().ok()) << c.check.overall();
  EXPECT_TRUE(c.check.certificates.AnySemantic());
}

TEST(CertificateTest, CertifiedProgramEvaluatesToShortestPaths) {
  auto run = core::ParseAndRun(kGuardedShortestPath);
  ASSERT_TRUE(run.ok()) << run.status();
  auto cost = core::LookupCost(*run->program, run->result.db, "s",
                               {datalog::Value::Symbol("a"),
                                datalog::Value::Symbol("b")});
  ASSERT_TRUE(cost.has_value());
  EXPECT_DOUBLE_EQ(cost->AsDouble(), 1.0);
}

TEST(CertificateTest, NegativeArcBreaksTheCertificate) {
  // Same program, one arc cost below the guard's threshold: the interval
  // for C1 now reaches below 0 and the guard can genuinely flip.
  std::string text = kGuardedShortestPath;
  text += "arc(b, c, -2).\n";
  Certified c = Check(text);
  const absint::ComponentCertificate* cert = CertFor(c, "s");
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->kind, CertificateKind::kUncertified) << cert->reason;
  EXPECT_FALSE(c.check.overall().ok());
}

TEST(CertificateTest, VacuouslyTrueGuardDoesNotCertify) {
  // No facts at all: every interval is empty and every comparison is
  // vacuously true. Certification must still be withheld — a certificate
  // earned on an empty database would be unsound for any real EDB.
  constexpr char kText[] = R"(
.decl lim(x, k: count_nat)
.decl e(x, y)
.decl small(x)
.decl kc(x, y)
small(X) :- lim(X, K), N = count : kc(X, Y), N < K.
kc(X, Y) :- e(X, Y), small(Y).
)";
  Certified c = Check(kText);
  const absint::ComponentCertificate* cert = CertFor(c, "small");
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->kind, CertificateKind::kUncertified) << cert->reason;
  EXPECT_FALSE(c.check.overall().ok());
}

TEST(CertificateTest, SyntacticallyAdmissibleStaysSyntactic) {
  constexpr char kText[] = R"(
.decl edge(x, y, c: min_real)
.decl dist(x, y, c: min_real)
dist(X, Y, C) :- C =r min D : edge(X, Y, D).
edge(a, b, 1).
)";
  Certified c = Check(kText);
  const absint::ComponentCertificate* cert = CertFor(c, "dist");
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->kind, CertificateKind::kSyntacticallyAdmissible);
}

TEST(CertificateTest, BadRecursionStaysUncertified) {
  std::ifstream in(MAD_SOURCE_DIR "/tests/lint_testdata/bad_recursion.mdl");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  Certified c = Check(buf.str());
  bool any_uncertified = false;
  for (const absint::ComponentCertificate& cert :
       c.check.certificates.components) {
    EXPECT_NE(cert.kind, CertificateKind::kSemanticallyMonotonic)
        << "nothing in bad_recursion.mdl is semantically salvageable";
    any_uncertified |= cert.kind == CertificateKind::kUncertified;
  }
  EXPECT_TRUE(any_uncertified);
  EXPECT_FALSE(c.check.overall().ok());
}

TEST(CertificateTest, SelectiveMaxFlowGetsBoundedChains) {
  constexpr char kText[] = R"(
.decl node(x)
.decl edge(x, y)
.decl sensor(x, c: max_real)
.decl level(x, c: max_real) default
.constraint sensor(X, C), node(X).
level(X, C) :- sensor(X, C).
level(Y, C) :- node(Y), C =r max D : (edge(X, Y), level(X, D)).
sensor(a, 3). node(a). node(b).
edge(a, b). edge(b, a).
)";
  Certified c = Check(kText);
  const absint::ComponentCertificate* cert = CertFor(c, "level");
  ASSERT_NE(cert, nullptr);
  EXPECT_TRUE(cert->chains_bounded) << cert->reason;
  bool found = false;
  for (const ComponentTermination& t : c.check.termination.components) {
    if (t.component_index != cert->component_index) continue;
    found = true;
    EXPECT_EQ(t.verdict, TerminationVerdict::kBoundedChains) << t.reason;
  }
  EXPECT_TRUE(found);
}

TEST(CertificateTest, CertificateReportRendersJson) {
  Certified c = Check(kGuardedShortestPath);
  std::string json = c.check.certificates.ToJson();
  EXPECT_NE(json.find("semantically-monotonic"), std::string::npos);
  EXPECT_NE(json.find("\"components\""), std::string::npos);
}

TEST(CertificateTest, TracesCoverEveryComponentRule) {
  Certified c = Check(kGuardedShortestPath);
  const absint::ComponentCertificate* cert = CertFor(c, "s");
  ASSERT_NE(cert, nullptr);
  EXPECT_EQ(cert->traces.size(), 3u);  // two path rules + the aggregate rule
  for (const absint::RuleTrace& t : cert->traces) {
    EXPECT_FALSE(t.steps.empty());
  }
}

}  // namespace
}  // namespace analysis
}  // namespace mad
