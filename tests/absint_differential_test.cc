// The differential validation harness (analysis/absint/differential.h):
// certified components must produce order-invariant least models under
// brute-force evaluation with randomized EDBs and shuffled orderings.

#include "analysis/absint/differential.h"

#include <gtest/gtest.h>

#include "analysis/dependency_graph.h"
#include "datalog/parser.h"
#include "workloads/programs.h"

namespace mad {
namespace analysis {
namespace absint {
namespace {

struct Prepared {
  datalog::Program program;
  std::unique_ptr<DependencyGraph> graph;
};

Prepared Prepare(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  Prepared out{std::move(p).value(), nullptr};
  out.graph = std::make_unique<DependencyGraph>(out.program);
  return out;
}

// The ISSUE acceptance bar: >= 100 randomized EDBs, order-invariant models.
TEST(DifferentialTest, GuardedShortestPathIsOrderInvariant) {
  Prepared p = Prepare(R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), C1 >= 0, arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
arc(a, b, 1).
arc(b, b, 0).
arc(b, a, 2).
)");
  DifferentialOptions opts;
  opts.trials = 120;
  opts.max_facts = 5;
  DifferentialResult r = RunDifferential(p.program, *p.graph, opts);
  EXPECT_EQ(r.mismatches, 0) << r.first_mismatch;
  // Random arcs can be negative, which correctly voids the certificate for
  // that EDB; but a healthy fraction must actually evaluate.
  EXPECT_GE(r.trials_run, 10) << r.ToString();
}

TEST(DifferentialTest, SelectiveMaxFlowRunsEveryTrial) {
  Prepared p = Prepare(R"(
.decl node(x)
.decl edge(x, y)
.decl sensor(x, c: max_real)
.decl level(x, c: max_real) default
.constraint sensor(X, C), node(X).
level(X, C) :- sensor(X, C).
level(Y, C) :- node(Y), C =r max D : (edge(X, Y), level(X, D)).
node(a). node(b). node(c).
sensor(a, 3).
edge(a, b). edge(b, c). edge(c, b).
)");
  DifferentialOptions opts;
  opts.trials = 100;
  DifferentialResult r = RunDifferential(p.program, *p.graph, opts);
  EXPECT_EQ(r.mismatches, 0) << r.first_mismatch;
  // Syntactically admissible on every EDB: nothing should be skipped.
  EXPECT_EQ(r.skipped, 0) << r.ToString();
  EXPECT_EQ(r.trials_run, 100);
}

TEST(DifferentialTest, CanonicalShortestPathProgram) {
  Prepared p = Prepare(workloads::kShortestPathProgram);
  DifferentialOptions opts;
  opts.trials = 60;
  opts.max_facts = 4;
  DifferentialResult r = RunDifferential(p.program, *p.graph, opts);
  EXPECT_EQ(r.mismatches, 0) << r.first_mismatch;
  EXPECT_GT(r.trials_run, 0) << r.ToString();
}

TEST(DifferentialTest, RejectedProgramIsSkippedNotFailed) {
  // Recursion through negation: uncertifiable, every trial skipped.
  Prepared p = Prepare(R"(
.decl p(x)
.decl q(x)
p(X) :- q(X).
q(X) :- p(X), !q(X).
)");
  DifferentialOptions opts;
  opts.trials = 10;
  DifferentialResult r = RunDifferential(p.program, *p.graph, opts);
  EXPECT_EQ(r.trials_run, 0);
  EXPECT_EQ(r.skipped, 10);
  EXPECT_TRUE(r.ok());
}

TEST(DifferentialTest, DeterministicUnderSeed) {
  Prepared p = Prepare(R"(
.decl edge(x, y)
.decl reach(x, y)
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
edge(a, b).
)");
  DifferentialOptions opts;
  opts.trials = 20;
  DifferentialResult a = RunDifferential(p.program, *p.graph, opts);
  DifferentialResult b = RunDifferential(p.program, *p.graph, opts);
  EXPECT_EQ(a.trials_run, b.trials_run);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.mismatches, b.mismatches);
}

}  // namespace
}  // namespace absint
}  // namespace analysis
}  // namespace mad
