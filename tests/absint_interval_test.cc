// The interval abstract domain (analysis/absint/interval.h): lattice laws,
// conservative arithmetic, widening, and the three-valued comparison that
// underwrites the semantic certificates.

#include "analysis/absint/interval.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mad {
namespace analysis {
namespace absint {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(IntervalTest, DefaultIsEmpty) {
  Interval i;
  EXPECT_TRUE(i.IsEmpty());
  EXPECT_TRUE(Interval::Empty().IsEmpty());
  EXPECT_FALSE(Interval::All().IsEmpty());
  EXPECT_TRUE(Interval::All().IsAll());
}

TEST(IntervalTest, PointAndContains) {
  Interval p = Interval::Point(3.0);
  EXPECT_TRUE(p.IsPoint());
  EXPECT_TRUE(p.Contains(3.0));
  EXPECT_FALSE(p.Contains(3.5));
  EXPECT_FALSE(Interval::Empty().Contains(0.0));
}

TEST(IntervalTest, JoinIsHull) {
  Interval a = Interval::Range(0, 1);
  Interval b = Interval::Range(5, 7);
  EXPECT_EQ(Join(a, b), Interval::Range(0, 7));
  // Empty is the identity of Join.
  EXPECT_EQ(Join(a, Interval::Empty()), a);
  EXPECT_EQ(Join(Interval::Empty(), b), b);
  // Join is commutative and idempotent.
  EXPECT_EQ(Join(a, b), Join(b, a));
  EXPECT_EQ(Join(a, a), a);
}

TEST(IntervalTest, MeetIsIntersection) {
  Interval a = Interval::Range(0, 5);
  Interval b = Interval::Range(3, 9);
  EXPECT_EQ(Meet(a, b), Interval::Range(3, 5));
  EXPECT_TRUE(Meet(Interval::Range(0, 1), Interval::Range(2, 3)).IsEmpty());
  EXPECT_TRUE(Meet(a, Interval::Empty()).IsEmpty());
}

TEST(IntervalTest, WidenKeepsStableBoundsDropsMovingOnes) {
  Interval older = Interval::Range(0, 10);
  // hi grew: widened to +inf, stable lo kept.
  Interval w = Widen(older, Interval::Range(0, 20));
  EXPECT_EQ(w.lo, 0.0);
  EXPECT_EQ(w.hi, kInf);
  // lo fell: widened to -inf.
  Interval w2 = Widen(older, Interval::Range(-1, 10));
  EXPECT_EQ(w2.lo, -kInf);
  EXPECT_EQ(w2.hi, 10.0);
  // Nothing moved: unchanged.
  EXPECT_EQ(Widen(older, older), older);
}

TEST(IntervalTest, WidenConvergesInOneStepPerBound) {
  // After widening both bounds no further widening can change the result:
  // this is what bounds the abstract fixpoint round count.
  Interval w = Widen(Interval::Range(0, 1), Interval::Range(-1, 2));
  EXPECT_EQ(Widen(w, Join(w, Interval::Range(-100, 100))), w);
}

TEST(IntervalTest, ArithmeticSoundOnSamples) {
  Interval a = Interval::Range(1, 2);
  Interval b = Interval::Range(-3, 4);
  EXPECT_EQ(Add(a, b), Interval::Range(-2, 6));
  EXPECT_EQ(Sub(a, b), Interval::Range(-3, 5));
  // Mul hull over all endpoint products: {-3,-6,4,8} -> [-6, 8].
  EXPECT_EQ(Mul(a, b), Interval::Range(-6, 8));
  EXPECT_EQ(Min2(a, b), Interval::Range(-3, 2));
  EXPECT_EQ(Max2(a, b), Interval::Range(1, 4));
}

TEST(IntervalTest, ArithmeticPropagatesEmpty) {
  EXPECT_TRUE(Add(Interval::Empty(), Interval::Range(0, 1)).IsEmpty());
  EXPECT_TRUE(Mul(Interval::Range(0, 1), Interval::Empty()).IsEmpty());
  EXPECT_TRUE(Min2(Interval::Empty(), Interval::Empty()).IsEmpty());
}

TEST(IntervalTest, DivisionByIntervalContainingZeroIsConservative) {
  Interval q = Div(Interval::Range(1, 1), Interval::Range(-1, 1));
  // Must over-approximate {1/x : x in [-1,1] \ {0}} = (-inf,-1] u [1,inf).
  EXPECT_TRUE(q.Contains(1.0));
  EXPECT_TRUE(q.Contains(-1.0));
  EXPECT_TRUE(q.Contains(100.0));
}

TEST(IntervalTest, IntegerPoints) {
  EXPECT_EQ(Interval::Range(0, 4).IntegerPoints(), 5);
  EXPECT_EQ(Interval::Point(2).IntegerPoints(), 1);
  EXPECT_EQ(Interval::Range(0.5, 0.9).IntegerPoints(), 0);
  EXPECT_EQ(Interval::All().IntegerPoints(), -1);
  EXPECT_EQ(Interval::Empty().IntegerPoints(), -1);
}

TEST(IntervalCompareTest, DisjointIntervalsDecide) {
  Interval lo = Interval::Range(0, 1);
  Interval hi = Interval::Range(2, 3);
  EXPECT_EQ(Compare(datalog::CmpOp::kLt, lo, hi), Truth::kAlwaysTrue);
  EXPECT_EQ(Compare(datalog::CmpOp::kGt, lo, hi), Truth::kAlwaysFalse);
  EXPECT_EQ(Compare(datalog::CmpOp::kLe, lo, hi), Truth::kAlwaysTrue);
  EXPECT_EQ(Compare(datalog::CmpOp::kNe, lo, hi), Truth::kAlwaysTrue);
  EXPECT_EQ(Compare(datalog::CmpOp::kEq, lo, hi), Truth::kAlwaysFalse);
}

TEST(IntervalCompareTest, OverlapIsUnknown) {
  Interval a = Interval::Range(0, 2);
  Interval b = Interval::Range(1, 3);
  EXPECT_EQ(Compare(datalog::CmpOp::kLt, a, b), Truth::kUnknown);
  EXPECT_EQ(Compare(datalog::CmpOp::kEq, a, b), Truth::kUnknown);
}

TEST(IntervalCompareTest, TheFlagshipGuard) {
  // C1 in [0, +inf) vs the constant 0: `C1 >= 0` must certify.
  EXPECT_EQ(Compare(datalog::CmpOp::kGe, Interval::AtLeast(0),
                    Interval::Point(0)),
            Truth::kAlwaysTrue);
  // But [-1, +inf) >= 0 cannot.
  EXPECT_EQ(Compare(datalog::CmpOp::kGe, Interval::AtLeast(-1),
                    Interval::Point(0)),
            Truth::kUnknown);
}

TEST(IntervalCompareTest, EmptyOperandIsVacuouslyTrue) {
  // The engine tracks vacuity separately (vacuously-true checks never
  // certify a component); the domain itself reports kAlwaysTrue because no
  // concrete binding reaches the comparison.
  EXPECT_EQ(Compare(datalog::CmpOp::kLt, Interval::Empty(),
                    Interval::Point(0)),
            Truth::kAlwaysTrue);
  EXPECT_EQ(Compare(datalog::CmpOp::kGt, Interval::Point(0),
                    Interval::Empty()),
            Truth::kAlwaysTrue);
}

TEST(IntervalCompareTest, PointEquality) {
  EXPECT_EQ(Compare(datalog::CmpOp::kEq, Interval::Point(2),
                    Interval::Point(2)),
            Truth::kAlwaysTrue);
  EXPECT_EQ(Compare(datalog::CmpOp::kEq, Interval::Point(2),
                    Interval::Point(3)),
            Truth::kAlwaysFalse);
}

}  // namespace
}  // namespace absint
}  // namespace analysis
}  // namespace mad
