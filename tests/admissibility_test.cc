// Definitions 4.2-4.5 (well-formed, monotone built-ins, admissibility) and
// the Section 5.2 r-monotonicity classification.

#include <gtest/gtest.h>

#include "analysis/admissibility.h"
#include "analysis/checker.h"
#include "datalog/parser.h"
#include "workloads/programs.h"

namespace mad {
namespace analysis {
namespace {

using datalog::ParseProgram;
using datalog::Program;

struct Parsed {
  Program program;
  std::unique_ptr<DependencyGraph> graph;
};

Parsed MustParse(std::string_view text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  Parsed out{std::move(p).value(), nullptr};
  out.graph = std::make_unique<DependencyGraph>(out.program);
  return out;
}

RuleAdmissibility CheckFirstRule(std::string_view text) {
  Parsed p = MustParse(text);
  EXPECT_FALSE(p.program.rules().empty());
  return CheckRuleAdmissible(p.program.rules()[0], *p.graph);
}

TEST(AdmissibilityTest, AllCanonicalProgramsAdmissible) {
  for (const char* text :
       {workloads::kShortestPathProgram, workloads::kCompanyControlProgram,
        workloads::kCompanyControlRMonotonic, workloads::kPartyProgram,
        workloads::kCircuitProgram, workloads::kHalfsumProgram}) {
    Parsed p = MustParse(text);
    EXPECT_TRUE(CheckAdmissible(p.program, *p.graph).ok())
        << CheckAdmissible(p.program, *p.graph) << "\nin:\n"
        << text;
  }
}

TEST(AdmissibilityTest, NegatedCdbSubgoalRejected) {
  RuleAdmissibility a = CheckFirstRule(R"(
.decl e(x)
.decl p(x)
.decl q(x)
p(X) :- e(X), !q(X).
q(X) :- p(X).
)");
  EXPECT_FALSE(a.admissible());
  EXPECT_FALSE(a.negation_ok);
  EXPECT_NE(a.diagnostic.find("negated CDB"), std::string::npos);
}

TEST(AdmissibilityTest, NegatedLdbSubgoalFine) {
  RuleAdmissibility a = CheckFirstRule(R"(
.decl e(x)
.decl f(x)
.decl p(x)
p(X) :- e(X), !f(X), p(X).
)");
  EXPECT_TRUE(a.admissible()) << a.diagnostic;
}

TEST(AdmissibilityTest, PseudoMonotonicNeedsDefaultValuePredicate) {
  // Circuit AND over a *non-default* recursive predicate: Definition 4.5
  // rejects it (the multiset size could grow).
  RuleAdmissibility a = CheckFirstRule(R"(
.decl gate(g, t)
.decl connect(g, w)
.decl t(w, v: bool_or)
t(G, C) :- gate(G, and), C = and D : (connect(G, W), t(W, D)).
)");
  EXPECT_FALSE(a.admissible());
  EXPECT_FALSE(a.aggregates_ok);
  EXPECT_NE(a.diagnostic.find("default-value"), std::string::npos);
}

TEST(AdmissibilityTest, PseudoMonotonicOverLdbIsUnrestricted) {
  // avg over a *lower* predicate is ordinary stratified aggregation.
  RuleAdmissibility a = CheckFirstRule(R"(
.decl record(s, c, g: max_real)
.decl s_avg(s, g: max_real)
s_avg(S, G) :- G =r avg D : record(S, C, D).
)");
  EXPECT_TRUE(a.admissible()) << a.diagnostic;
}

TEST(AdmissibilityTest, WellFormedRejectsConstantCdbCost) {
  RuleAdmissibility a = CheckFirstRule(R"(
.decl e(x)
.decl p(x, c: min_real)
p(X, 3) :- e(X), p(X, 3).
)");
  EXPECT_FALSE(a.well_formed);
  EXPECT_NE(a.diagnostic.find("Definition 4.2(2)"), std::string::npos);
}

TEST(AdmissibilityTest, WellFormedRejectsRepeatedCdbCostVariable) {
  // The CDB cost variable C occurs in two non-built-in subgoals.
  RuleAdmissibility a = CheckFirstRule(R"(
.decl p(x, c: min_real)
.decl q(x, c: min_real)
p(X, C) :- p(X, C), q(X, C).
q(X, C) :- p(X, C).
)");
  EXPECT_FALSE(a.well_formed);
  EXPECT_NE(a.diagnostic.find("Definition 4.2(3)"), std::string::npos);
}

TEST(AdmissibilityTest, MonotoneBuiltinsAccepted) {
  // C = C1 + C2 with C1 a CDB min-cost variable: the canonical monotone case.
  RuleAdmissibility a = CheckFirstRule(R"(
.decl arc(x, y, c: min_real)
.decl p(x, y, c: min_real)
p(X, Y, C) :- p(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
)");
  EXPECT_TRUE(a.admissible()) << a.diagnostic;
}

TEST(AdmissibilityTest, AntitoneComparisonRejected) {
  // N < K with N a growing CDB count: satisfaction can flip off.
  RuleAdmissibility a = CheckFirstRule(R"(
.decl e(x, y)
.decl lim(x, k: count_nat)
.decl small(x)
.decl kc(x, y)
small(X) :- lim(X, K), N = count : kc(X, Y), N < K.
kc(X, Y) :- e(X, Y), small(Y).
)");
  EXPECT_FALSE(a.admissible());
  EXPECT_FALSE(a.builtins_monotonic);
}

TEST(AdmissibilityTest, HeadCostDirectionMismatchRejected) {
  // A descending (min) CDB value flowing into an ascending (max) head.
  RuleAdmissibility a = CheckFirstRule(R"(
.decl p(x, c: max_nonneg)
.decl q2(x, c: min_real)
p(X, C) :- q2(X, C1), C = C1 + 1.
q2(X, C) :- p(X, C0), C = C0 + 1.
)");
  EXPECT_FALSE(a.admissible());
  EXPECT_FALSE(a.builtins_monotonic);
  EXPECT_NE(a.diagnostic.find("does not align"), std::string::npos);
}

TEST(AdmissibilityTest, SubtractionOfCdbValueRejected) {
  RuleAdmissibility a = CheckFirstRule(R"(
.decl arc(x, y, c: min_real)
.decl p(x, y, c: min_real)
p(X, Y, C) :- p(X, Z, C1), arc(Z, Y, C2), C = C2 - C1.
)");
  EXPECT_FALSE(a.admissible());
}

TEST(AdmissibilityTest, MultiplicationByNonNegativeConstantAccepted) {
  RuleAdmissibility a = CheckFirstRule(R"(
.decl p(x, c: sum_real)
.decl p2(x, c: sum_real)
p(X, C) :- p2(X, C1), C = 2 * C1.
p2(X, C) :- p(X, C1), C = C1 + 1.
)");
  EXPECT_TRUE(a.admissible()) << a.diagnostic;
}

TEST(AdmissibilityTest, MultiplicationByNegativeConstantRejected) {
  RuleAdmissibility a = CheckFirstRule(R"(
.decl p(x, c: sum_real)
.decl p2(x, c: sum_real)
p(X, C) :- p2(X, C1), C = -1 * C1 + 10.
p2(X, C) :- p(X, C).
)");
  EXPECT_FALSE(a.admissible());
}

TEST(AdmissibilityTest, Min2OfCdbValuesAccepted) {
  RuleAdmissibility a = CheckFirstRule(R"(
.decl arc(x, y, c: min_real)
.decl p(x, y, c: min_real)
p(X, Y, C) :- p(X, Z, C1), arc(Z, Y, C2), C = min2(C1 + C2, 100).
)");
  EXPECT_TRUE(a.admissible()) << a.diagnostic;
}

// --- Section 5.2: r-monotonicity (Mumick et al.) ----------------------------

TEST(RMonotonicTest, ShortestPathIsNotRMonotonic) {
  // "There is little hope of rewriting it as an r-monotonic program since
  // the length of the shortest path should be part of the s relation."
  Parsed p = MustParse(workloads::kShortestPathProgram);
  EXPECT_FALSE(IsProgramRMonotonic(p.program));
}

TEST(RMonotonicTest, CompanyControlOriginalIsNotRMonotonic) {
  // The m rule puts the sum into the head.
  Parsed p = MustParse(workloads::kCompanyControlProgram);
  EXPECT_FALSE(IsProgramRMonotonic(p.program));
}

TEST(RMonotonicTest, CompanyControlRewriteIsRMonotonic) {
  // Merging the m and c rules makes it r-monotonic (Section 5.2).
  Parsed p = MustParse(workloads::kCompanyControlRMonotonic);
  EXPECT_TRUE(IsProgramRMonotonic(p.program));
}

TEST(RMonotonicTest, PartyIsMonotonicButNotRMonotonic) {
  // "Example 4.3 is monotonic, but not r-monotonic due to the
  // nonmonotonicity in K."
  Parsed p = MustParse(workloads::kPartyProgram);
  EXPECT_TRUE(CheckAdmissible(p.program, *p.graph).ok());
  EXPECT_FALSE(IsProgramRMonotonic(p.program));
}

TEST(RMonotonicTest, PlainDatalogIsRMonotonic) {
  Parsed p = MustParse(R"(
.decl e(x, y)
.decl tc(x, y)
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), e(Z, Y).
)");
  EXPECT_TRUE(IsProgramRMonotonic(p.program));
}

TEST(RMonotonicTest, NegationBreaksRMonotonicity) {
  Parsed p = MustParse(R"(
.decl e(x)
.decl f(x)
.decl g(x)
g(X) :- e(X), !f(X).
)");
  EXPECT_FALSE(IsProgramRMonotonic(p.program));
}

// --- The checker façade ------------------------------------------------------

TEST(CheckerTest, ShortestPathFullReport) {
  Parsed p = MustParse(workloads::kShortestPathProgram);
  ProgramCheckResult r = CheckProgram(p.program, *p.graph);
  EXPECT_TRUE(r.range_restricted.ok());
  EXPECT_TRUE(r.cost_respecting.ok());
  EXPECT_TRUE(r.conflict_free.ok());
  EXPECT_TRUE(r.admissible.ok());
  EXPECT_FALSE(r.r_monotonic);
  EXPECT_TRUE(r.overall().ok());
  std::string s = r.ToString();
  EXPECT_NE(s.find("thru-aggregation"), std::string::npos);
}

TEST(CheckerTest, OverallFailsForNonMonotonicRecursion) {
  Parsed p = MustParse(R"(
.decl e(x, y)
.decl lim(x, k: count_nat)
.decl small(x)
.decl kc(x, y)
small(X) :- lim(X, K), N = count : kc(X, Y), N < K.
kc(X, Y) :- e(X, Y), small(Y).
)");
  ProgramCheckResult r = CheckProgram(p.program, *p.graph);
  EXPECT_FALSE(r.overall().ok());
}

TEST(CheckerTest, ValidateForEvaluationEndToEnd) {
  auto ok = ParseProgram(workloads::kCircuitProgram);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ValidateForEvaluation(*ok).ok());
}

}  // namespace
}  // namespace analysis
}  // namespace mad
