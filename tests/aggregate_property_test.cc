// Property-based verification of the paper's Figure 1: every row's
// aggregate function is monotonic in the Section 4.1 sense —
//   I ⊑_D I'  ⇒  F(I) ⊑_R F(I')
// where I ⊑_D I' holds via an injective, element-wise-⊑ mapping. We generate
// I' from I either by appending elements or by raising existing elements,
// which realizes exactly such mappings.

#include <gtest/gtest.h>

#include <cmath>

#include "lattice/aggregate.h"
#include "util/random.h"

namespace mad {
namespace lattice {
namespace {

using datalog::Value;
using datalog::ValueSet;

/// Samples a random member of an aggregate's input domain.
Value SampleElement(const CostDomain* domain, Random* rng) {
  if (const auto* num = dynamic_cast<const NumericDomain*>(domain)) {
    double lo = std::isfinite(num->lo()) ? num->lo() : -50.0;
    double hi = std::isfinite(num->hi()) ? num->hi() : 50.0;
    double v = rng->UniformReal(lo, hi);
    if (num->integral()) v = std::floor(v);
    return Value::Real(v);
  }
  // Set domain: random subset of a small universe. For the intersection
  // domain the universe must be the domain's own (elements outside it would
  // escape the lattice).
  const auto* set = dynamic_cast<const SetDomain*>(domain);
  ValueSet universe;
  if (set != nullptr && set->universe() != nullptr) {
    universe = *set->universe();
  } else {
    for (int i = 0; i < 8; ++i) {
      universe.push_back(Value::Symbol("s" + std::to_string(i)));
    }
  }
  ValueSet elems;
  for (const Value& u : universe) {
    if (rng->Bernoulli(0.3)) elems.push_back(u);
  }
  return Value::Set(std::move(elems));
}

/// Returns an element v' with v ⊑_D v' (possibly equal).
Value RaiseElement(const CostDomain* domain, const Value& v, Random* rng) {
  if (const auto* num = dynamic_cast<const NumericDomain*>(domain)) {
    double delta = rng->UniformReal(0.0, 10.0);
    if (num->integral()) delta = std::floor(delta);
    double raised = num->ascending() ? v.AsDouble() + delta
                                     : v.AsDouble() - delta;
    raised = std::min(std::max(raised, num->lo()), num->hi());
    // Moving toward Top() in ⊑; clamping keeps us inside the carrier.
    return Value::Real(raised);
  }
  const auto* set = dynamic_cast<const SetDomain*>(domain);
  if (set->ascending()) {
    // ⊆-raise: union with another random set.
    return SetDomain::Union(v, SampleElement(domain, rng));
  }
  // ⊇-raise: drop random elements.
  ValueSet kept;
  for (const Value& e : v.set_value()) {
    if (rng->Bernoulli(0.6)) kept.push_back(e);
  }
  return Value::Set(std::move(kept));
}

std::vector<Value> SampleMultiset(const CostDomain* domain, int max_size,
                                  Random* rng) {
  std::vector<Value> out;
  int n = static_cast<int>(rng->Uniform(0, max_size));
  for (int i = 0; i < n; ++i) out.push_back(SampleElement(domain, rng));
  return out;
}

class Figure1MonotonicityTest : public ::testing::TestWithParam<int> {
 protected:
  const Figure1Row& row() const { return Figure1()[GetParam()]; }
};

TEST_P(Figure1MonotonicityTest, AddingElementsRaisesTheAggregate) {
  const AggregateFunction* fn = row().fn;
  Random rng(1000 + GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Value> base = SampleMultiset(fn->input_domain(), 6, &rng);
    std::vector<Value> extended = base;
    int extra = static_cast<int>(rng.Uniform(1, 3));
    for (int i = 0; i < extra; ++i) {
      extended.push_back(SampleElement(fn->input_domain(), &rng));
    }
    auto fa = fn->Apply(base);
    auto fb = fn->Apply(extended);
    ASSERT_TRUE(fa.ok() && fb.ok());
    EXPECT_TRUE(fn->output_domain()->LessEq(*fa, *fb))
        << row().description << ": F(" << base.size() << " elems) = "
        << fa->ToString() << " not ⊑ F(" << extended.size()
        << " elems) = " << fb->ToString();
  }
}

TEST_P(Figure1MonotonicityTest, RaisingElementsRaisesTheAggregate) {
  const AggregateFunction* fn = row().fn;
  Random rng(2000 + GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Value> base = SampleMultiset(fn->input_domain(), 6, &rng);
    std::vector<Value> raised = base;
    for (Value& v : raised) {
      if (rng.Bernoulli(0.5)) v = RaiseElement(fn->input_domain(), v, &rng);
    }
    auto fa = fn->Apply(base);
    auto fb = fn->Apply(raised);
    ASSERT_TRUE(fa.ok() && fb.ok());
    EXPECT_TRUE(fn->output_domain()->LessEq(*fa, *fb)) << row().description;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRows, Figure1MonotonicityTest,
                         ::testing::Range(0, 11),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Row" + std::to_string(info.param + 1);
                         });

// ---------------------------------------------------------------------------
// Pseudo-monotonicity (Section 4.1.1): monotone between equal-size multisets.
// ---------------------------------------------------------------------------

class PseudoMonotonicityTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(PseudoMonotonicityTest, FixedCardinalityMonotone) {
  auto [name, domain_name] = GetParam();
  const CostDomain* domain = DomainRegistry::Global().Find(domain_name);
  auto fn_or = AggregateRegistry::Global().FindOrCreate(name, domain);
  ASSERT_TRUE(fn_or.ok());
  const AggregateFunction* fn = *fn_or;
  ASSERT_EQ(fn->monotonicity(), Monotonicity::kPseudoMonotonic);

  Random rng(31337);
  for (int trial = 0; trial < 300; ++trial) {
    int k = static_cast<int>(rng.Uniform(1, 6));
    std::vector<Value> base, raised;
    for (int i = 0; i < k; ++i) {
      Value v = SampleElement(fn->input_domain(), &rng);
      base.push_back(v);
      raised.push_back(RaiseElement(fn->input_domain(), v, &rng));
    }
    auto fa = fn->Apply(base);
    auto fb = fn->Apply(raised);
    ASSERT_TRUE(fa.ok() && fb.ok());
    EXPECT_TRUE(fn->output_domain()->LessEq(*fa, *fb))
        << name << " on " << domain_name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PseudoRows, PseudoMonotonicityTest,
    ::testing::Values(std::make_pair("and", "bool_or"),
                      std::make_pair("min", "max_real"),
                      std::make_pair("max", "min_real"),
                      std::make_pair("avg", "max_real")),
    [](const ::testing::TestParamInfo<std::pair<const char*, const char*>>&
           info) {
      return std::string(info.param.first) + "_" + info.param.second;
    });

TEST(PseudoMonotonicityTest, AndUnderLeqIsNotFullyMonotonic) {
  // The Section 4.1.1 counterexample: AND({1}) = 1 but AND({0, 1}) = 0, so
  // growing the multiset can lower the result — only the fixed-cardinality
  // (pseudo) property holds, which is why Definition 4.5 demands
  // default-value predicates under pseudo-monotonic aggregates.
  auto fn = AggregateRegistry::Global().FindOrCreate("and", BoolOrDomain());
  ASSERT_TRUE(fn.ok());
  auto one = (*fn)->Apply({Value::Real(1)});
  auto zero_one = (*fn)->Apply({Value::Real(0), Value::Real(1)});
  ASSERT_TRUE(one.ok() && zero_one.ok());
  EXPECT_FALSE(BoolOrDomain()->LessEq(*one, *zero_one));
}

TEST(PseudoMonotonicityTest, AverageCounterexampleToFullMonotonicity) {
  auto fn = AggregateRegistry::Global().FindOrCreate("avg", MaxRealDomain());
  ASSERT_TRUE(fn.ok());
  auto high = (*fn)->Apply({Value::Real(10)});
  auto mixed = (*fn)->Apply({Value::Real(10), Value::Real(0)});
  ASSERT_TRUE(high.ok() && mixed.ok());
  EXPECT_FALSE(MaxRealDomain()->LessEq(*high, *mixed));
}

}  // namespace
}  // namespace lattice
}  // namespace mad
