#include <gtest/gtest.h>

#include <cmath>

#include "lattice/aggregate.h"

namespace mad {
namespace lattice {
namespace {

using datalog::Value;
using datalog::ValueSet;

const AggregateFunction* Get(const char* name, const CostDomain* domain) {
  auto fn = AggregateRegistry::Global().FindOrCreate(name, domain);
  EXPECT_TRUE(fn.ok()) << fn.status();
  return fn.value();
}

double Apply(const AggregateFunction* fn, std::vector<double> values) {
  std::vector<Value> multiset;
  for (double v : values) multiset.push_back(Value::Real(v));
  auto r = fn->Apply(multiset);
  EXPECT_TRUE(r.ok()) << r.status();
  return r->AsDouble();
}

TEST(AggregateTest, MinOnMinRealIsMonotonicAndComputesMinimum) {
  const AggregateFunction* fn = Get("min", MinRealDomain());
  EXPECT_EQ(fn->monotonicity(), Monotonicity::kMonotonic);
  EXPECT_DOUBLE_EQ(Apply(fn, {3, 1, 2}), 1.0);
  // F(∅) must be the output bottom (+inf for the min lattice).
  EXPECT_TRUE(std::isinf(Apply(fn, {})));
  EXPECT_GT(Apply(fn, {}), 0);
}

TEST(AggregateTest, MinOnAscendingDomainIsOnlyPseudoMonotonic) {
  const AggregateFunction* fn = Get("min", MaxRealDomain());
  EXPECT_EQ(fn->monotonicity(), Monotonicity::kPseudoMonotonic);
  EXPECT_DOUBLE_EQ(Apply(fn, {3, 1, 2}), 1.0);
  // Pseudo-monotonic extrema have no empty-multiset value.
  EXPECT_FALSE(fn->Apply({}).ok());
}

TEST(AggregateTest, MaxBothDirections) {
  EXPECT_EQ(Get("max", MaxRealDomain())->monotonicity(),
            Monotonicity::kMonotonic);
  EXPECT_EQ(Get("max", MinRealDomain())->monotonicity(),
            Monotonicity::kPseudoMonotonic);
  EXPECT_DOUBLE_EQ(Apply(Get("max", MaxRealDomain()), {3, 7, 2}), 7.0);
}

TEST(AggregateTest, SumSaturatesAndHandlesEmpty) {
  const AggregateFunction* fn = Get("sum", SumNonNegDomain());
  EXPECT_EQ(fn->monotonicity(), Monotonicity::kMonotonic);
  EXPECT_DOUBLE_EQ(Apply(fn, {1, 2, 3.5}), 6.5);
  EXPECT_DOUBLE_EQ(Apply(fn, {}), 0.0);
  EXPECT_TRUE(std::isinf(
      Apply(fn, {std::numeric_limits<double>::infinity(), 1})));
}

TEST(AggregateTest, SumRejectsDescendingDomains) {
  EXPECT_FALSE(MakeAggregate("sum", MinRealDomain()).ok());
}

TEST(AggregateTest, CountIgnoresValuesCountsElements) {
  const AggregateFunction* fn = Get("count", BoolOrDomain());
  EXPECT_EQ(fn->output_domain(), CountNatDomain());
  EXPECT_DOUBLE_EQ(Apply(fn, {1, 1, 0}), 3.0);
  EXPECT_DOUBLE_EQ(Apply(fn, {}), 0.0);
}

TEST(AggregateTest, Product) {
  const AggregateFunction* fn = Get("product", ProductPosDomain());
  EXPECT_DOUBLE_EQ(Apply(fn, {2, 3, 4}), 24.0);
  EXPECT_DOUBLE_EQ(Apply(fn, {}), 1.0);  // bottom of the product lattice
  std::vector<Value> below_one = {Value::Real(0.5)};
  EXPECT_FALSE(fn->Apply(below_one).ok());
}

TEST(AggregateTest, AndOrOnBooleans) {
  const AggregateFunction* and_mono = Get("and", BoolAndDomain());
  EXPECT_EQ(and_mono->monotonicity(), Monotonicity::kMonotonic);
  EXPECT_DOUBLE_EQ(Apply(and_mono, {1, 1, 0}), 0.0);
  EXPECT_DOUBLE_EQ(Apply(and_mono, {}), 1.0);  // bottom under ⊑ = ≥

  // The circuit example's pairing: AND over the ≤-ordered booleans.
  const AggregateFunction* and_pseudo = Get("and", BoolOrDomain());
  EXPECT_EQ(and_pseudo->monotonicity(), Monotonicity::kPseudoMonotonic);
  EXPECT_DOUBLE_EQ(Apply(and_pseudo, {1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Apply(and_pseudo, {1, 0}), 0.0);

  const AggregateFunction* or_mono = Get("or", BoolOrDomain());
  EXPECT_EQ(or_mono->monotonicity(), Monotonicity::kMonotonic);
  EXPECT_DOUBLE_EQ(Apply(or_mono, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Apply(or_mono, {}), 0.0);
}

TEST(AggregateTest, AndRequiresBooleanDomain) {
  EXPECT_FALSE(MakeAggregate("and", MaxRealDomain()).ok());
  EXPECT_FALSE(MakeAggregate("or", MinRealDomain()).ok());
}

TEST(AggregateTest, AverageIsPseudoMonotonic) {
  const AggregateFunction* fn = Get("avg", MaxRealDomain());
  EXPECT_EQ(fn->monotonicity(), Monotonicity::kPseudoMonotonic);
  EXPECT_DOUBLE_EQ(Apply(fn, {2, 4}), 3.0);
  EXPECT_FALSE(fn->Apply({}).ok());
}

TEST(AggregateTest, HalfSum) {
  const AggregateFunction* fn = Get("halfsum", SumNonNegDomain());
  EXPECT_EQ(fn->monotonicity(), Monotonicity::kMonotonic);
  EXPECT_DOUBLE_EQ(Apply(fn, {1, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Apply(fn, {}), 0.0);
}

TEST(AggregateTest, UnionAndIntersection) {
  const AggregateFunction* u = Get("union", SetUnionDomain());
  std::vector<Value> sets = {Value::Set({Value::Int(1)}),
                             Value::Set({Value::Int(2), Value::Int(1)})};
  auto ur = u->Apply(sets);
  ASSERT_TRUE(ur.ok());
  EXPECT_EQ(*ur, Value::Set({Value::Int(1), Value::Int(2)}));
  auto ue = u->Apply({});
  ASSERT_TRUE(ue.ok());
  EXPECT_EQ(ue->set_value().size(), 0u);

  auto domain = MakeSetIntersectionDomain(
      "isect_agg_test", {Value::Int(1), Value::Int(2), Value::Int(3)});
  const AggregateFunction* i = Get("intersection", domain.get());
  auto ir = i->Apply(sets);
  ASSERT_TRUE(ir.ok());
  EXPECT_EQ(*ir, Value::Set({Value::Int(1)}));
  // Empty intersection = bottom = the whole universe.
  auto ie = i->Apply({});
  ASSERT_TRUE(ie.ok());
  EXPECT_EQ(ie->set_value().size(), 3u);
}

TEST(AggregateTest, HasPath4DetectsLongSimplePaths) {
  const AggregateFunction* fn = Get("has_path4", SetUnionDomain());
  auto edge = [](const char* a, const char* b) {
    return Value::Set({Value::Symbol(a), Value::Symbol(b)});
  };
  // Chain of 4 edges: v0-v1-v2-v3-v4.
  std::vector<Value> chain = {edge("v0", "v1"), edge("v1", "v2"),
                              edge("v2", "v3"), edge("v3", "v4")};
  auto r = fn->Apply(chain);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsDouble(), 1.0);

  // Only 3 edges: no simple path of length 4.
  chain.pop_back();
  r = fn->Apply(chain);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsDouble(), 0.0);

  // A triangle is too short even with many edges (path must be simple).
  std::vector<Value> triangle = {edge("a", "b"), edge("b", "c"),
                                 edge("c", "a")};
  r = fn->Apply(triangle);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsDouble(), 0.0);

  // A 5-clique as one element certainly has one.
  std::vector<Value> clique = {
      Value::Set({Value::Symbol("a"), Value::Symbol("b"), Value::Symbol("c"),
                  Value::Symbol("d"), Value::Symbol("e")})};
  r = fn->Apply(clique);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->AsDouble(), 1.0);
}

TEST(AggregateTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeAggregate("median", MaxRealDomain()).ok());
  EXPECT_FALSE(AggregateRegistry::Global().IsAggregateName("median"));
  EXPECT_TRUE(AggregateRegistry::Global().IsAggregateName("min"));
}

TEST(AggregateTest, RegistryCachesInstances) {
  const AggregateFunction* a = Get("min", MinRealDomain());
  const AggregateFunction* b = Get("min", MinRealDomain());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Get("min", MaxRealDomain()));
}

TEST(Figure1Test, HasAllElevenRows) {
  const auto& rows = Figure1();
  ASSERT_EQ(rows.size(), 11u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].row_number, static_cast<int>(i) + 1);
    EXPECT_NE(rows[i].fn, nullptr);
    // Every Figure-1 row is monotonic (pseudo-monotonic functions are listed
    // separately in Section 4.1.1).
    EXPECT_EQ(rows[i].fn->monotonicity(), Monotonicity::kMonotonic)
        << rows[i].description;
  }
}

}  // namespace
}  // namespace lattice
}  // namespace mad
