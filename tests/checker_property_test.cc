// Property tests for CheckProgram: its verdicts are semantic properties of
// the program, so they must be invariant under (a) the textual order of the
// rules and (b) consistent renaming of the predicates. A verdict that
// changed under either transformation would mean the checker is keying off
// an accident of presentation.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "analysis/checker.h"
#include "analysis/dependency_graph.h"
#include "datalog/parser.h"
#include "util/random.h"
#include "workloads/programs.h"

namespace mad {
namespace analysis {
namespace {

// Everything CheckProgram decides, keyed by presentation-independent names:
// per-predicate monotonicity/certificate/termination, the accept/reject
// decision, and the multiset of (rule, severity) diagnostics.
struct Fingerprint {
  bool accepted = false;
  // predicate name -> "monotonic=1 cert=semantically-monotonic term=..."
  std::map<std::string, std::string> per_predicate;
  std::multiset<std::string> diagnostics;  // "MAD004/error"

  bool operator==(const Fingerprint& o) const {
    return accepted == o.accepted && per_predicate == o.per_predicate &&
           diagnostics == o.diagnostics;
  }
};

Fingerprint FingerprintOf(const datalog::Program& program,
                          const std::string& rename_suffix = "") {
  DependencyGraph graph(program);
  ProgramCheckResult check = CheckProgram(program, graph);
  Fingerprint fp;
  fp.accepted = check.overall().ok();
  for (const ComponentVerdict& v : check.components) {
    const absint::ComponentCertificate* cert =
        check.certificates.ForComponent(v.index);
    std::string term = "?";
    for (const ComponentTermination& t : check.termination.components) {
      if (t.component_index == v.index) {
        term = TerminationVerdictName(t.verdict);
      }
    }
    std::string desc =
        std::string("monotonic=") + (v.monotonic ? "1" : "0") + " cert=" +
        (cert != nullptr ? absint::CertificateKindName(cert->kind) : "?") +
        " term=" + term;
    for (const std::string& name : v.predicate_names) {
      // Strip the rename suffix so renamed programs key identically.
      std::string key = name;
      if (!rename_suffix.empty() && key.size() > rename_suffix.size() &&
          key.compare(key.size() - rename_suffix.size(), rename_suffix.size(),
                      rename_suffix) == 0) {
        key.resize(key.size() - rename_suffix.size());
      }
      fp.per_predicate[key] = desc;
    }
  }
  for (const lint::Diagnostic& d : check.diagnostics.diagnostics()) {
    fp.diagnostics.insert(d.rule_id + "/" + lint::SeverityName(d.severity));
  }
  return fp;
}

datalog::Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status() << "\n" << text;
  return std::move(p).value();
}

/// Appends `suffix` to every predicate name, consistently, via word-boundary
/// replacement of the names found by an initial parse. Longer names are
/// rewritten first so a predicate that is a prefix of another cannot corrupt
/// it; the suffix keeps the renamed names collision-free among themselves.
std::string RenamePredicates(const std::string& text,
                             const std::string& suffix) {
  datalog::Program program = MustParse(text);
  std::vector<std::string> names;
  for (const auto& p : program.predicates()) names.push_back(p->name);
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              return a.size() > b.size();
            });
  std::string out = text;
  for (const std::string& name : names) {
    out = std::regex_replace(out, std::regex("\\b" + name + "\\b"),
                             name + suffix);
  }
  return out;
}

const char* const kPrograms[] = {
    workloads::kShortestPathProgram,
    workloads::kCompanyControlProgram,
    workloads::kPartyProgram,
    // The semantically-certified flagship: exercises the absint path.
    R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), C1 >= 0, arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
arc(a, b, 1).
arc(b, a, 2).
)",
    // A rejected program: rejection must also be presentation-invariant.
    R"(
.decl p(x)
.decl q(x)
p(X) :- q(X).
q(X) :- p(X), !q(X).
)",
    // Bounded-chains selective flow.
    R"(
.decl node(x)
.decl edge(x, y)
.decl sensor(x, c: max_real)
.decl level(x, c: max_real) default
.constraint sensor(X, C), node(X).
level(X, C) :- sensor(X, C).
level(Y, C) :- node(Y), C =r max D : (edge(X, Y), level(X, D)).
node(a). sensor(a, 3). edge(a, a).
)",
};

TEST(CheckerPropertyTest, VerdictsInvariantUnderRuleReordering) {
  for (const char* text : kPrograms) {
    datalog::Program reference = MustParse(text);
    Fingerprint want = FingerprintOf(reference);
    Random rng(0xfeedULL);
    for (int trial = 0; trial < 8; ++trial) {
      datalog::Program shuffled = MustParse(text);
      auto& rules = shuffled.mutable_rules();
      std::vector<int> perm = rng.Permutation(static_cast<int>(rules.size()));
      std::vector<datalog::Rule> reordered;
      reordered.reserve(rules.size());
      for (int idx : perm) reordered.push_back(rules[idx].Clone());
      rules = std::move(reordered);
      Fingerprint got = FingerprintOf(shuffled);
      EXPECT_EQ(got.accepted, want.accepted) << text;
      EXPECT_EQ(got.per_predicate, want.per_predicate) << text;
      EXPECT_EQ(got.diagnostics, want.diagnostics) << text;
    }
  }
}

TEST(CheckerPropertyTest, VerdictsInvariantUnderPredicateRenaming) {
  for (const char* text : kPrograms) {
    Fingerprint want = FingerprintOf(MustParse(text));
    for (const std::string& suffix : {std::string("_rn"), std::string("x")}) {
      std::string renamed_text = RenamePredicates(text, suffix);
      Fingerprint got = FingerprintOf(MustParse(renamed_text), suffix);
      EXPECT_EQ(got.accepted, want.accepted) << renamed_text;
      EXPECT_EQ(got.per_predicate, want.per_predicate) << renamed_text;
      EXPECT_EQ(got.diagnostics, want.diagnostics) << renamed_text;
    }
  }
}

}  // namespace
}  // namespace analysis
}  // namespace mad
