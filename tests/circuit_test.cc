// Experiment E4.4: circuit evaluation — default values + the
// pseudo-monotonic AND aggregate, on acyclic and cyclic circuits.

#include <gtest/gtest.h>

#include "baselines/circuit_sim.h"
#include "core/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace {

using baselines::Circuit;
using baselines::SimulateCircuit;
using datalog::Value;

std::vector<bool> RunEngine(const Circuit& c, core::EvalOptions options = {}) {
  auto program = datalog::ParseProgram(workloads::kCircuitProgram);
  EXPECT_TRUE(program.ok()) << program.status();
  datalog::Database edb;
  EXPECT_TRUE(workloads::AddCircuitFacts(*program, c, &edb).ok());
  core::Engine engine(*program, options);
  auto result = engine.Run(std::move(edb));
  EXPECT_TRUE(result.ok()) << result.status();

  std::vector<bool> values(c.num_wires, false);
  const auto* t = result->db.Find(program->FindPredicate("t"));
  if (t != nullptr) {
    t->ForEach([&](const datalog::Tuple& key, const Value& cost) {
      int w = std::stoi(std::string(key[0].symbol_name()).substr(1));
      values[w] = cost.AsDouble() > 0.5;
    });
  }
  return values;
}

Circuit TinyCyclic() {
  // g1 = AND(g1)          (self-loop: minimal behaviour -> false)
  // g2 = OR(w0, g1)
  // g3 = AND(w0, g2)
  Circuit c;
  c.num_inputs = 1;
  c.num_wires = 4;
  c.input_values = {true};
  c.gates = {{Circuit::GateType::kAnd, 1, {1}},
             {Circuit::GateType::kOr, 2, {0, 1}},
             {Circuit::GateType::kAnd, 3, {0, 2}}};
  return c;
}

TEST(CircuitTest, MinimalBehaviourOfCyclicAndGate) {
  Circuit c = TinyCyclic();
  std::vector<bool> got = RunEngine(c);
  EXPECT_FALSE(got[1]);  // the self-fed AND stays at the default 0
  EXPECT_TRUE(got[2]);
  EXPECT_TRUE(got[3]);
}

TEST(CircuitTest, SelfFedOrLatchCanTurnOn) {
  // g1 = OR(w0, g1): once the input is 1 the latch holds 1; with input 0 the
  // minimal behaviour keeps it 0.
  for (bool input : {false, true}) {
    Circuit c;
    c.num_inputs = 1;
    c.num_wires = 2;
    c.input_values = {input};
    c.gates = {{Circuit::GateType::kOr, 1, {0, 1}}};
    std::vector<bool> got = RunEngine(c);
    EXPECT_EQ(got[1], input);
  }
}

TEST(CircuitTest, CrossCoupledAndGatesStayLow) {
  // g1 = AND(g2), g2 = AND(g1): the least fixpoint is all-false even though
  // all-true would also be a (non-minimal) model.
  Circuit c;
  c.num_inputs = 0;
  c.num_wires = 2;
  c.gates = {{Circuit::GateType::kAnd, 0, {1}},
             {Circuit::GateType::kAnd, 1, {0}}};
  std::vector<bool> got = RunEngine(c);
  EXPECT_FALSE(got[0]);
  EXPECT_FALSE(got[1]);
}

class CircuitSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(CircuitSeedTest, MatchesSimulatorOnAcyclicCircuits) {
  Random rng(GetParam());
  Circuit c = workloads::RandomCircuit(6, 40, 4, /*feedback_fraction=*/0.0,
                                       &rng);
  EXPECT_EQ(RunEngine(c), SimulateCircuit(c).wire_values);
}

TEST_P(CircuitSeedTest, MatchesSimulatorOnCyclicCircuits) {
  Random rng(100 + GetParam());
  Circuit c = workloads::RandomCircuit(6, 40, 4, /*feedback_fraction=*/0.3,
                                       &rng);
  EXPECT_EQ(RunEngine(c), SimulateCircuit(c).wire_values);
}

TEST_P(CircuitSeedTest, NaiveAndSemiNaiveAgree) {
  Random rng(200 + GetParam());
  Circuit c = workloads::RandomCircuit(5, 25, 3, 0.25, &rng);
  core::EvalOptions naive;
  naive.strategy = core::Strategy::kNaive;
  EXPECT_EQ(RunEngine(c, naive), RunEngine(c));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitSeedTest, ::testing::Range(1, 7));

TEST(CircuitTest, WithoutDefaultDeclarationProgramIsRejected) {
  // Example 4.4's point: drop `default` from t and the pseudo-monotonic AND
  // aggregate no longer guarantees monotonicity — the checker must refuse.
  std::string no_default = workloads::kCircuitProgram;
  size_t pos = no_default.find(" default");
  ASSERT_NE(pos, std::string::npos);
  no_default.erase(pos, 8);
  auto run = core::ParseAndRun(no_default);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kAnalysisError);
}

TEST(CircuitTest, MaximalBehaviourViaDualEncoding) {
  // The paper: "For the circuit to behave in a maximal fashion, one would
  // change the default value for t from 0 to 1" — i.e. flip the lattice to
  // bool_and (bottom = 1) and swap the aggregate pairing.
  const char* dual = R"(
.decl gate(g, type)
.decl connect(g, w)
.decl input(w, v: bool_and)
.decl t(w, v: bool_and) default
.constraint gate(G, or), gate(G, and).
.constraint input(W, C), gate(W, T).
t(W, C) :- input(W, C).
t(G, C) :- gate(G, or), C = or D : (connect(G, W), t(W, D)).
t(G, C) :- gate(G, and), C = and D : (connect(G, W), t(W, D)).
gate(g1, and).
connect(g1, g1).
)";
  auto run = core::ParseAndRun(dual);
  ASSERT_TRUE(run.ok()) << run.status();
  auto v = core::LookupCost(*run->program, run->result.db, "t",
                            {Value::Symbol("g1")});
  ASSERT_TRUE(v.has_value());
  // Under the maximal reading the self-fed AND holds itself at 1.
  EXPECT_DOUBLE_EQ(v->AsDouble(), 1.0);
}

TEST(CircuitTest, LargeCircuitReachesFixpoint) {
  Random rng(9);
  Circuit c = workloads::RandomCircuit(20, 400, 5, 0.2, &rng);
  std::vector<bool> got = RunEngine(c);
  EXPECT_EQ(got, SimulateCircuit(c).wire_values);
}

}  // namespace
}  // namespace mad
