// Client retry semantics: transient transport failures (kUnavailable)
// reconnect and resend with capped backoff; everything else fails fast.
// Resending is sound because madd's writes are idempotent lattice joins —
// these tests also pin that down end-to-end by resending an insert that was
// already applied and checking the model does not move.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server/state.h"
#include "server/wire.h"

namespace mad {
namespace server {
namespace {

constexpr const char* kProgram = R"(
.decl arc(from, to, c: min_real)
.decl s(from, to, c: min_real)
s(X, Y, C) :- arc(X, Y, C).
arc(a, b, 1).
)";

RetryOptions FastRetry(int attempts) {
  RetryOptions r;
  r.max_attempts = attempts;
  r.initial_backoff = std::chrono::milliseconds(1);
  r.max_backoff = std::chrono::milliseconds(4);
  r.seed = 42;
  return r;
}

/// A port that refuses connections: bind + close, then use the freed port.
/// (Small race with other processes; acceptable for a test that only needs
/// "very probably nothing listening".)
int DeadPort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(ClientRetryTest, ConnectionRefusedIsUnavailable) {
  auto client = Client::Connect("127.0.0.1", DeadPort());
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
}

TEST(ClientRetryTest, ConnectWithRetryExhaustsAndReportsAttempts) {
  auto client = Client::ConnectWithRetry("127.0.0.1", DeadPort(), FastRetry(3));
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(client.status().message().find("3 attempts"), std::string::npos)
      << client.status();
}

TEST(ClientRetryTest, BadAddressFailsFastNotRetried) {
  auto client =
      Client::ConnectWithRetry("not-an-address", DeadPort(), FastRetry(5));
  ASSERT_FALSE(client.ok());
  // Fails fast with the non-retryable code, not "after 5 attempts".
  EXPECT_EQ(client.status().code(), StatusCode::kInvalidArgument);
}

/// Minimal hand-rolled server: scripts how each accepted connection is
/// treated, so tests can force drops at exact protocol points.
class FlakyListener {
 public:
  enum class Behavior {
    kCloseBeforeResponse,  ///< read the request, drop the connection
    kServePing,            ///< respond to one request properly, then close
    kGarbageResponse,      ///< reply with a protocol-violating frame
  };

  explicit FlakyListener(std::vector<Behavior> script)
      : script_(std::move(script)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Run(); });
  }

  ~FlakyListener() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }

  int port() const { return port_; }
  int accepted() const { return accepted_.load(); }

 private:
  void Run() {
    for (const Behavior behavior : script_) {
      int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) return;  // listener torn down
      ++accepted_;
      std::string payload;
      auto got = ReadFrame(conn, &payload);
      if (got.ok() && *got) {
        switch (behavior) {
          case Behavior::kCloseBeforeResponse:
            break;  // just close: the client sees EOF mid-call
          case Behavior::kServePing: {
            Json response = Json::Object();
            response.Set("ok", Json::Bool(true));
            response.Set("verb", Json::Str("ping"));
            response.Set("epoch", Json::Int(0));
            (void)WriteFrame(conn, response.Dump());
            break;
          }
          case Behavior::kGarbageResponse: {
            const char kGarbage[] = "not-a-frame-header\n";
            (void)::send(conn, kGarbage, sizeof(kGarbage) - 1, MSG_NOSIGNAL);
            break;
          }
        }
      }
      ::close(conn);
    }
  }

  int fd_ = -1;
  int port_ = 0;
  std::vector<Behavior> script_;
  std::atomic<int> accepted_{0};
  std::thread thread_;
};

TEST(ClientRetryTest, CallWithRetryReconnectsAndResendsAfterMidCallDrop) {
  FlakyListener listener({FlakyListener::Behavior::kCloseBeforeResponse,
                          FlakyListener::Behavior::kServePing});
  auto client = Client::Connect("127.0.0.1", listener.port());
  ASSERT_TRUE(client.ok()) << client.status();

  Json ping = Json::Object();
  ping.Set("verb", Json::Str("ping"));
  auto response = client->CallWithRetry(ping, FastRetry(4));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->At("ok").boolean);
  EXPECT_EQ(listener.accepted(), 2);  // first dropped, second served
}

TEST(ClientRetryTest, ProtocolViolationIsNotRetried) {
  FlakyListener listener({FlakyListener::Behavior::kGarbageResponse,
                          FlakyListener::Behavior::kServePing});
  auto client = Client::Connect("127.0.0.1", listener.port());
  ASSERT_TRUE(client.ok());

  Json ping = Json::Object();
  ping.Set("verb", Json::Str("ping"));
  auto response = client->CallWithRetry(ping, FastRetry(4));
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(listener.accepted(), 1);  // fail fast: no second connection
}

TEST(ClientRetryTest, ResentInsertIsIdempotentAgainstRealServer) {
  auto state = ServerState::Load(kProgram, {});
  ASSERT_TRUE(state.ok());
  auto srv = Server::Start(std::move(*state), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = Client::Connect("127.0.0.1", (*srv)->port());
  ASSERT_TRUE(client.ok());

  // Apply a batch, then resend the identical batch — the model must not
  // move (joins are idempotent), though the epoch does tick.
  ASSERT_TRUE(client->Insert("arc(b, c, 2).")->At("ok").boolean);
  auto before = client->Dump();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(client->Insert("arc(b, c, 2).")->At("ok").boolean);
  auto after = client->Dump();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->At("model").str, after->At("model").str);

  (*srv)->RequestShutdown();
  (*srv)->Wait();
}

}  // namespace
}  // namespace server
}  // namespace mad
