// Experiment E2.7: company control — the engine's least model matches the
// direct solver, reproduces the Section 5.6 definedness point, and the
// r-monotonic rewrite computes the same controls relation.

#include <gtest/gtest.h>

#include "baselines/company_control.h"
#include "core/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace {

using baselines::OwnershipNetwork;
using baselines::SolveCompanyControl;
using core::EvalOptions;
using datalog::Value;

struct EngineControl {
  std::vector<std::vector<bool>> controls;
  std::vector<std::vector<double>> fraction;
};

EngineControl RunEngine(const OwnershipNetwork& net, const char* program_text,
                        EvalOptions options = {}) {
  auto program = datalog::ParseProgram(program_text);
  EXPECT_TRUE(program.ok()) << program.status();
  datalog::Database edb;
  EXPECT_TRUE(workloads::AddOwnershipFacts(*program, net, &edb).ok());
  core::Engine engine(*program, options);
  auto result = engine.Run(std::move(edb));
  EXPECT_TRUE(result.ok()) << result.status();

  int n = net.num_companies;
  EngineControl out;
  out.controls.assign(n, std::vector<bool>(n, false));
  out.fraction.assign(n, std::vector<double>(n, 0.0));
  auto id = [](const Value& v) {
    return std::stoi(std::string(v.symbol_name()).substr(1));
  };
  if (const auto* c = result->db.Find(program->FindPredicate("c"))) {
    c->ForEach([&](const datalog::Tuple& key, const Value&) {
      out.controls[id(key[0])][id(key[1])] = true;
    });
  }
  if (const datalog::PredicateInfo* m = program->FindPredicate("m")) {
    if (const auto* rel = result->db.Find(m)) {
      rel->ForEach([&](const datalog::Tuple& key, const Value& cost) {
        out.fraction[id(key[0])][id(key[1])] = cost.AsDouble();
      });
    }
  }
  return out;
}

TEST(CompanyControlTest, VanGelderExampleSection56) {
  // EDB {s(a,b,.3), s(a,c,.3), s(b,c,.6), s(c,b,.6)}: for us c(a,b) and
  // c(a,c) are *false* (not undefined); b and c control each other — and,
  // through the mutual 0.6 + their own 0.6, themselves.
  OwnershipNetwork net;
  net.Resize(3);  // 0=a, 1=b, 2=c
  net.shares[0][1] = 0.3;
  net.shares[0][2] = 0.3;
  net.shares[1][2] = 0.6;
  net.shares[2][1] = 0.6;
  EngineControl got = RunEngine(net, workloads::kCompanyControlProgram);
  EXPECT_FALSE(got.controls[0][1]);  // c(a, b) is false in the least model
  EXPECT_FALSE(got.controls[0][2]);
  EXPECT_TRUE(got.controls[1][2]);
  EXPECT_TRUE(got.controls[2][1]);
  EXPECT_TRUE(got.controls[1][1]);
  EXPECT_TRUE(got.controls[2][2]);
  EXPECT_NEAR(got.fraction[0][1], 0.3, 1e-9);
}

TEST(CompanyControlTest, ControlChainPropagates) {
  // 0 owns 60% of 1, 1 owns 60% of 2, ...: 0 controls everything downstream.
  OwnershipNetwork net;
  net.Resize(5);
  for (int i = 0; i + 1 < 5; ++i) net.shares[i][i + 1] = 0.6;
  EngineControl got = RunEngine(net, workloads::kCompanyControlProgram);
  for (int j = 1; j < 5; ++j) EXPECT_TRUE(got.controls[0][j]) << j;
  EXPECT_FALSE(got.controls[1][0]);
}

TEST(CompanyControlTest, SplitOwnershipNeedsTheRecursion) {
  // 0 owns 40% of 2 directly and controls 1 which owns 20% of 2: only the
  // recursive sum pushes 0 over 50%.
  OwnershipNetwork net;
  net.Resize(3);
  net.shares[0][1] = 0.9;
  net.shares[0][2] = 0.4;
  net.shares[1][2] = 0.2;
  EngineControl got = RunEngine(net, workloads::kCompanyControlProgram);
  EXPECT_TRUE(got.controls[0][2]);
  EXPECT_NEAR(got.fraction[0][2], 0.6, 1e-9);
}

class CompanyControlSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(CompanyControlSeedTest, MatchesDirectSolverOnRandomNetworks) {
  Random rng(GetParam());
  OwnershipNetwork net = workloads::RandomOwnership(20, 4, 0.4, &rng);
  EngineControl got = RunEngine(net, workloads::kCompanyControlProgram);
  baselines::ControlResult want = SolveCompanyControl(net);
  for (int x = 0; x < net.num_companies; ++x) {
    for (int y = 0; y < net.num_companies; ++y) {
      EXPECT_EQ(got.controls[x][y], want.controls[x][y])
          << "c(" << x << "," << y << ")";
      EXPECT_NEAR(got.fraction[x][y], want.controlled_fraction[x][y], 1e-9);
    }
  }
}

TEST_P(CompanyControlSeedTest, RMonotonicRewriteComputesSameControls) {
  // Section 5.2: merging the m and c rules gives an r-monotonic program
  // with the same controls relation (m is no longer materialized).
  Random rng(100 + GetParam());
  OwnershipNetwork net = workloads::RandomOwnership(15, 3, 0.5, &rng);
  EngineControl original =
      RunEngine(net, workloads::kCompanyControlProgram);
  EngineControl rewrite =
      RunEngine(net, workloads::kCompanyControlRMonotonic);
  EXPECT_EQ(original.controls, rewrite.controls);
}

TEST_P(CompanyControlSeedTest, NaiveAndSemiNaiveAgree) {
  Random rng(200 + GetParam());
  OwnershipNetwork net = workloads::RandomOwnership(12, 3, 0.5, &rng);
  EvalOptions naive;
  naive.strategy = core::Strategy::kNaive;
  EngineControl a = RunEngine(net, workloads::kCompanyControlProgram, naive);
  EngineControl b = RunEngine(net, workloads::kCompanyControlProgram);
  EXPECT_EQ(a.controls, b.controls);
  EXPECT_EQ(a.fraction, b.fraction);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompanyControlSeedTest,
                         ::testing::Range(1, 7));

TEST(CompanyControlTest, DirectSolverMonotoneInShares) {
  // Property: raising any share can only add controls (monotonicity at the
  // problem level — the semantic property the paper's framework formalizes).
  Random rng(31);
  OwnershipNetwork net = workloads::RandomOwnership(12, 3, 0.3, &rng);
  baselines::ControlResult before = SolveCompanyControl(net);
  OwnershipNetwork raised = net;
  for (int trial = 0; trial < 10; ++trial) {
    int x = static_cast<int>(rng.Uniform(0, 11));
    int y = static_cast<int>(rng.Uniform(0, 11));
    if (x != y) {
      raised.shares[x][y] = std::min(1.0, raised.shares[x][y] + 0.2);
    }
  }
  baselines::ControlResult after = SolveCompanyControl(raised);
  for (int x = 0; x < 12; ++x) {
    for (int y = 0; y < 12; ++y) {
      if (before.controls[x][y]) EXPECT_TRUE(after.controls[x][y]);
    }
  }
}

}  // namespace
}  // namespace mad
