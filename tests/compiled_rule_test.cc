// Unit tests for the rule compiler: slot assignment, safe scheduling,
// driver-variant construction (the semi-naive machinery of Section 6.2).

#include <gtest/gtest.h>

#include "analysis/dependency_graph.h"
#include "core/compiled_rule.h"
#include "datalog/parser.h"
#include "workloads/programs.h"

namespace mad {
namespace core {
namespace {

using analysis::DependencyGraph;
using datalog::ParseProgram;
using datalog::Program;

struct Compiled {
  Program program;
  std::unique_ptr<DependencyGraph> graph;
  std::vector<CompiledRule> rules;
};

Compiled CompileAll(std::string_view text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  Compiled out{std::move(p).value(), nullptr, {}};
  out.graph = std::make_unique<DependencyGraph>(out.program);
  for (const auto& rule : out.program.rules()) {
    auto cr = CompileRule(rule, *out.graph);
    EXPECT_TRUE(cr.ok()) << cr.status();
    out.rules.push_back(std::move(cr).value());
  }
  return out;
}

TEST(CompiledRuleTest, SlotAssignmentCoversAllVariables) {
  Compiled c = CompileAll(workloads::kShortestPathProgram);
  // path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
  const CompiledRule& r = c.rules[1];
  EXPECT_EQ(r.num_slots, 6);  // X Z Y C C1 C2
  EXPECT_EQ(r.var_slots.size(), 6u);
  EXPECT_TRUE(r.var_slots.count("C1"));
  EXPECT_EQ(r.head_key.size(), 3u);
  ASSERT_TRUE(r.head_cost.has_value());
  EXPECT_TRUE(r.head_cost->is_slot);
}

TEST(CompiledRuleTest, BuiltinScheduledAfterItsInputs) {
  Compiled c = CompileAll(workloads::kShortestPathProgram);
  const CompiledRule& r = c.rules[1];
  // Base schedule: two atoms then the assignment C = C1 + C2.
  ASSERT_EQ(r.base.size(), 3u);
  EXPECT_EQ(r.base[0].kind, CompiledSubgoal::Kind::kAtom);
  EXPECT_EQ(r.base[1].kind, CompiledSubgoal::Kind::kAtom);
  EXPECT_EQ(r.base[2].kind, CompiledSubgoal::Kind::kBuiltin);
  EXPECT_GE(r.base[2].builtin.assign_slot, 0);
}

TEST(CompiledRuleTest, DriversPerOccurrenceWithCdbFlags) {
  Compiled c = CompileAll(workloads::kShortestPathProgram);
  // Rule 0 (path from arc): only an LDB driver (for incremental updates).
  EXPECT_FALSE(c.rules[0].has_cdb_occurrence());
  ASSERT_EQ(c.rules[0].drivers.size(), 1u);
  EXPECT_FALSE(c.rules[0].drivers[0].cdb);
  // Rule 1: s is CDB, arc is LDB — one driver each.
  ASSERT_EQ(c.rules[1].drivers.size(), 2u);
  EXPECT_EQ(c.rules[1].drivers[0].delta_pred->name, "s");
  EXPECT_TRUE(c.rules[1].drivers[0].cdb);
  EXPECT_FALSE(c.rules[1].drivers[0].via_aggregate);
  EXPECT_EQ(c.rules[1].drivers[1].delta_pred->name, "arc");
  EXPECT_FALSE(c.rules[1].drivers[1].cdb);
  // Rule 2 (the min aggregate over path): one aggregate driver.
  ASSERT_EQ(c.rules[2].drivers.size(), 1u);
  EXPECT_EQ(c.rules[2].drivers[0].delta_pred->name, "path");
  EXPECT_TRUE(c.rules[2].drivers[0].cdb);
  EXPECT_TRUE(c.rules[2].drivers[0].via_aggregate);
  // The seed (path atom) binds X and Y directly: no group finder needed.
  EXPECT_TRUE(c.rules[2].drivers[0].group_finder.empty());
  EXPECT_EQ(c.rules[2].drivers[0].grouping_slots.size(), 2u);
}

TEST(CompiledRuleTest, AggregateDriverWithGroupFinder) {
  // Circuit AND rule: the delta occurrence t(W, D) does not bind the
  // grouping variable G — the finder must join connect(G, W).
  Compiled c = CompileAll(workloads::kCircuitProgram);
  const CompiledRule& and_rule = c.rules[2];
  const DriverVariant* d = nullptr;
  for (const DriverVariant& cand : and_rule.drivers) {
    if (cand.delta_pred->name == "t") d = &cand;
  }
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->cdb);
  EXPECT_TRUE(d->via_aggregate);
  ASSERT_EQ(d->group_finder.size(), 1u);
  EXPECT_EQ(d->group_finder[0].pred->name, "connect");
}

TEST(CompiledRuleTest, AggregateInnerSchedulingBindsDefaultKeysFirst) {
  // Inside `C = and D : (connect(G, W), t(W, D))`, the default-value atom
  // t(W, D) must come after connect(G, W) binds W.
  Compiled c = CompileAll(workloads::kCircuitProgram);
  const CompiledRule& and_rule = c.rules[2];
  const CompiledSubgoal* agg_step = nullptr;
  for (const auto& step : and_rule.base) {
    if (step.kind == CompiledSubgoal::Kind::kAggregate) agg_step = &step;
  }
  ASSERT_NE(agg_step, nullptr);
  ASSERT_EQ(agg_step->aggregate.inner.size(), 2u);
  EXPECT_EQ(agg_step->aggregate.inner[0].pred->name, "connect");
  EXPECT_EQ(agg_step->aggregate.inner[1].pred->name, "t");
}

TEST(CompiledRuleTest, MultipleCdbOccurrencesMultipleDrivers) {
  Compiled c = CompileAll(R"(
.decl e(x, y)
.decl tc(x, y)
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), tc(Y, Z).
)");
  int cdb_drivers = 0;
  for (const DriverVariant& d : c.rules[1].drivers) cdb_drivers += d.cdb;
  EXPECT_EQ(cdb_drivers, 2);
  EXPECT_EQ(c.rules[1].drivers.size(), 2u);  // both occurrences are CDB
}

TEST(CompiledRuleTest, NegationScheduledLast) {
  Compiled c = CompileAll(R"(
.decl e(x)
.decl f(x)
.decl g(x)
g(X) :- !f(X), e(X).
)");
  const CompiledRule& r = c.rules[0];
  ASSERT_EQ(r.base.size(), 2u);
  EXPECT_EQ(r.base[0].kind, CompiledSubgoal::Kind::kAtom);
  EXPECT_EQ(r.base[1].kind, CompiledSubgoal::Kind::kNegatedAtom);
}

TEST(CompiledRuleTest, RestrictedAggregateScheduledWithoutOuterBindings) {
  // s(X, Y, C) :- C =r min D : path(...): the aggregate is the only
  // subgoal; =r readiness lets it self-bind the grouping variables.
  Compiled c = CompileAll(workloads::kShortestPathProgram);
  const CompiledRule& r = c.rules[2];
  ASSERT_EQ(r.base.size(), 1u);
  EXPECT_EQ(r.base[0].kind, CompiledSubgoal::Kind::kAggregate);
  EXPECT_EQ(r.base[0].aggregate.grouping_slots.size(), 2u);
  // Z (the local) is scoped; the grouping slots are not.
  for (int scoped : r.base[0].aggregate.scoped_slots) {
    for (int group : r.base[0].aggregate.grouping_slots) {
      EXPECT_NE(scoped, group);
    }
  }
}

TEST(CompiledRuleTest, HalfsumGroupingIsEmpty) {
  Compiled c = CompileAll(workloads::kHalfsumProgram);
  const CompiledRule& r = c.rules[0];
  ASSERT_EQ(r.drivers.size(), 1u);
  EXPECT_TRUE(r.drivers[0].grouping_slots.empty());
  EXPECT_TRUE(r.drivers[0].group_finder.empty());
}

}  // namespace
}  // namespace core
}  // namespace mad
