// Definition 2.10 (conflict-freedom) — the syntactic sufficient condition
// for cost-consistency (Lemma 2.3).

#include <gtest/gtest.h>

#include "analysis/conflict_free.h"
#include "datalog/parser.h"
#include "workloads/programs.h"

namespace mad {
namespace analysis {
namespace {

using datalog::ParseProgram;

Status Check(std::string_view text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return CheckConflictFree(*p);
}

TEST(ConflictFreeTest, AllCanonicalProgramsAreConflictFree) {
  EXPECT_TRUE(Check(workloads::kShortestPathProgram).ok());
  EXPECT_TRUE(Check(workloads::kCompanyControlProgram).ok());
  EXPECT_TRUE(Check(workloads::kCompanyControlRMonotonic).ok());
  EXPECT_TRUE(Check(workloads::kPartyProgram).ok());
  EXPECT_TRUE(Check(workloads::kCircuitProgram).ok());
  EXPECT_TRUE(Check(workloads::kHalfsumProgram).ok());
}

TEST(ConflictFreeTest, Section24MinVsSumConflict) {
  // The two-rule inconsistency example from Section 2.4.
  Status st = Check(R"(
.decl q(x, d: min_real)
.decl r(x, d: min_real)
.decl p(x, c: min_real)
p(X, C) :- C =r min D : q(X, D).
p(X, C) :- C =r min D : r(X, D).
)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Definition 2.10"), std::string::npos);
}

TEST(ConflictFreeTest, NonCostRespectingRuleRejected) {
  // Section 2.4's single-rule example: p(X,C) :- q(X,Y,C).
  Status st = Check(R"(
.decl q(x, y, c: min_real)
.decl p(x, c: min_real)
p(X, C) :- q(X, Y, C).
)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cost-respecting"), std::string::npos);
}

TEST(ConflictFreeTest, ConstraintRescuesPathRules) {
  // Without the integrity constraint the two path rules conflict...
  Status without = Check(R"(
.decl arc(x, y, c: min_real)
.decl s(x, z, c: min_real)
.decl path(x, z, y, c: min_real)
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
)");
  EXPECT_FALSE(without.ok());
  // ...and with it they are fine (Example 2.5).
  Status with = Check(R"(
.decl arc(x, y, c: min_real)
.decl s(x, z, c: min_real)
.decl path(x, z, y, c: min_real)
.constraint arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
)");
  EXPECT_TRUE(with.ok()) << with;
}

TEST(ConflictFreeTest, ContainmentMappingRescuesCvRules) {
  // Example 2.5 / 2.7: the two cv rules are fine because of the containment
  // mapping once heads are unified.
  EXPECT_TRUE(Check(R"(
.decl s(a, b, n: sum_real)
.decl c(a, b)
.decl cv(a, b, c, n: sum_real)
cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
)")
                  .ok());
}

TEST(ConflictFreeTest, NonUnifiableHeadsNeverConflict) {
  EXPECT_TRUE(Check(R"(
.decl q(x, c: min_real)
.decl p(x, c: min_real)
p(a, C) :- C =r min D : q(a, D).
p(b, C) :- C =r max D : q(b, D).
)")
                  .ok());
}

TEST(ConflictFreeTest, CostFreeHeadsNeverConflict) {
  EXPECT_TRUE(Check(R"(
.decl e(x)
.decl f(x)
.decl g(x)
g(X) :- e(X).
g(X) :- f(X).
)")
                  .ok());
}

TEST(ConflictFreeTest, IdenticalRulesAreContained) {
  EXPECT_TRUE(Check(R"(
.decl q(x, c: min_real)
.decl p(x, c: min_real)
p(X, C) :- q(X, C).
p(Y, D) :- q(Y, D).
)")
                  .ok());
}

}  // namespace
}  // namespace analysis
}  // namespace mad
