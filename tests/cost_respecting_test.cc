// Definition 2.7 (cost-respecting rules) on the paper's Example 2.3 cases.

#include <gtest/gtest.h>

#include "analysis/cost_respecting.h"
#include "datalog/parser.h"

namespace mad {
namespace analysis {
namespace {

using datalog::ParseProgram;

constexpr const char* kDecls = R"(
.decl q(x, y, c: min_real)
.decl p(x, c: min_real)
.decl s(x, z, c: min_real)
.decl arc(z, y, c: min_real)
.decl path(x, z, y, c: min_real)
.decl sp(x, y, c: min_real)
.decl plain(x)
)";

Status CheckRule(const std::string& rule) {
  auto prog = ParseProgram(std::string(kDecls) + rule);
  EXPECT_TRUE(prog.ok()) << prog.status();
  return CheckRuleCostRespecting(prog->rules()[0]);
}

TEST(CostRespectingTest, Example23ProjectionViolation) {
  // p(X, C) :- q(X, Y, C): {X,Y} -> C does not give X -> C.
  Status st = CheckRule("p(X, C) :- q(X, Y, C).");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not cost-respecting"), std::string::npos);
}

TEST(CostRespectingTest, Example23PathComposition) {
  // XZ -> C1, ZY -> C2, C1 C2 -> C, so XZY -> C by Armstrong's axioms.
  EXPECT_TRUE(CheckRule("path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), "
                        "C = C1 + C2.")
                  .ok());
}

TEST(CostRespectingTest, Example23AggregateGrouping) {
  // The aggregate value is functionally dependent on the grouping vars.
  EXPECT_TRUE(
      CheckRule("sp(X, Y, C) :- C =r min D : path(X, Z, Y, D).").ok());
}

TEST(CostRespectingTest, ConstantCostIsAlwaysRespected) {
  EXPECT_TRUE(CheckRule("p(X, 0) :- plain(X).").ok());
}

TEST(CostRespectingTest, CostFreeHeadVacuouslyRespected) {
  EXPECT_TRUE(CheckRule("plain(X) :- q(X, Y, C).").ok());
}

TEST(CostRespectingTest, TransitiveDerivedVariables) {
  // C depends on E which depends on body costs: closure must chain.
  EXPECT_TRUE(CheckRule("p(X, C) :- s(X, X, C1), E = C1 * 2, C = E + 1.")
                  .ok());
}

TEST(CostRespectingTest, UnderivableCostRejected) {
  Status st = CheckRule("p(X, C) :- plain(X), plain(C).");
  // C appears in a non-cost position only; the FD closure cannot reach it
  // from {X}... except C is itself limited here. It is still not an FD
  // violation detectable by the closure? plain(C) binds C from the active
  // domain, so two different C values can pair with one X: not respected.
  EXPECT_FALSE(st.ok());
}

TEST(CostRespectingTest, ClosureComputation) {
  FunctionalDependency fd1{{"A"}, "B"};
  FunctionalDependency fd2{{"B", "C"}, "D"};
  auto closure = FdClosure({"A", "C"}, {fd1, fd2});
  EXPECT_TRUE(closure.count("A"));
  EXPECT_TRUE(closure.count("B"));
  EXPECT_TRUE(closure.count("D"));
  EXPECT_EQ(closure.size(), 4u);

  auto partial = FdClosure({"A"}, {fd1, fd2});
  EXPECT_FALSE(partial.count("D"));
}

TEST(CostRespectingTest, CollectBodyFdsShapes) {
  auto prog = ParseProgram(std::string(kDecls) +
                           "path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), "
                           "C = C1 + C2.");
  ASSERT_TRUE(prog.ok());
  auto fds = CollectBodyFds(prog->rules()[0]);
  // s: {X,Z}->C1; arc: {Z,Y}->C2; builtin: {C1,C2}->C (and C->... reverse
  // only for bare-variable equalities, so exactly 3 here).
  ASSERT_EQ(fds.size(), 3u);
  EXPECT_EQ(fds[0].ToString(), "{X, Z} -> C1");
  EXPECT_EQ(fds[1].ToString(), "{Y, Z} -> C2");
  EXPECT_EQ(fds[2].ToString(), "{C1, C2} -> C");
}

}  // namespace
}  // namespace analysis
}  // namespace mad
