#include <gtest/gtest.h>

#include "datalog/database.h"
#include "datalog/parser.h"
#include "lattice/cost_domain.h"

namespace mad {
namespace datalog {
namespace {

Program DeclOnly() {
  auto p = ParseProgram(R"(
.decl s(x, y, c: min_real)
.decl e(x, y)
.decl sum_pred(x, c: sum_real)
)");
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

Tuple Key(const char* a, const char* b) {
  return {Value::Symbol(a), Value::Symbol(b)};
}

TEST(RelationTest, MergeNewIncreasedUnchangedUnderMinOrder) {
  Program p = DeclOnly();
  Relation rel(p.FindPredicate("s"));
  // min_real: ⊑ is ≥, so numerically *smaller* costs are increases.
  EXPECT_EQ(rel.Merge(Key("a", "b"), Value::Real(5)),
            Relation::MergeResult::kNew);
  EXPECT_EQ(rel.Merge(Key("a", "b"), Value::Real(7)),
            Relation::MergeResult::kUnchanged);
  EXPECT_EQ(rel.Merge(Key("a", "b"), Value::Real(3)),
            Relation::MergeResult::kIncreased);
  EXPECT_DOUBLE_EQ(rel.Find(Key("a", "b"))->AsDouble(), 3.0);
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, FunctionalDependencyIsStructural) {
  Program p = DeclOnly();
  Relation rel(p.FindPredicate("s"));
  rel.Merge(Key("a", "b"), Value::Real(5));
  rel.Merge(Key("a", "b"), Value::Real(2));
  // Only ever one row per key; no two atoms differ only on cost.
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, CostFreePredicates) {
  Program p = DeclOnly();
  Relation rel(p.FindPredicate("e"));
  EXPECT_EQ(rel.Merge(Key("a", "b"), Value()),
            Relation::MergeResult::kNew);
  EXPECT_EQ(rel.Merge(Key("a", "b"), Value()),
            Relation::MergeResult::kUnchanged);
  EXPECT_TRUE(rel.Contains(Key("a", "b")));
  EXPECT_FALSE(rel.Contains(Key("b", "a")));
}

TEST(RelationTest, ScanWithBoundPositions) {
  Program p = DeclOnly();
  Relation rel(p.FindPredicate("s"));
  rel.Merge(Key("a", "b"), Value::Real(1));
  rel.Merge(Key("a", "c"), Value::Real(2));
  rel.Merge(Key("b", "c"), Value::Real(3));

  int count = 0;
  double sum = 0;
  rel.Scan({0}, {Value::Symbol("a")}, [&](const Tuple& key, const Value& c) {
    ++count;
    sum += c.AsDouble();
    EXPECT_EQ(key[0], Value::Symbol("a"));
  });
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sum, 3.0);

  // Second position index.
  count = 0;
  rel.Scan({1}, {Value::Symbol("c")},
           [&](const Tuple&, const Value&) { ++count; });
  EXPECT_EQ(count, 2);

  // Fully bound: point lookup.
  count = 0;
  rel.Scan({0, 1}, Key("b", "c"),
           [&](const Tuple&, const Value&) { ++count; });
  EXPECT_EQ(count, 1);

  // Empty pattern: full scan.
  count = 0;
  rel.Scan({}, {}, [&](const Tuple&, const Value&) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST(RelationTest, IndexesExtendLazilyAfterInserts) {
  Program p = DeclOnly();
  Relation rel(p.FindPredicate("s"));
  rel.Merge(Key("a", "b"), Value::Real(1));
  int count = 0;
  rel.Scan({0}, {Value::Symbol("a")},
           [&](const Tuple&, const Value&) { ++count; });
  EXPECT_EQ(count, 1);
  // Insert after the index was built; the next scan must see it.
  rel.Merge(Key("a", "z"), Value::Real(9));
  count = 0;
  rel.Scan({0}, {Value::Symbol("a")},
           [&](const Tuple&, const Value&) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(RelationTest, RowAccessorsStable) {
  Program p = DeclOnly();
  Relation rel(p.FindPredicate("s"));
  rel.Merge(Key("a", "b"), Value::Real(1));
  rel.Merge(Key("c", "d"), Value::Real(2));
  EXPECT_EQ(rel.key_at(0), Key("a", "b"));
  EXPECT_EQ(rel.key_at(1), Key("c", "d"));
  EXPECT_EQ(*rel.FindRow(Key("c", "d")), 1u);
  EXPECT_FALSE(rel.FindRow(Key("x", "y")).has_value());
}

TEST(DatabaseTest, AddFactValidatesDomain) {
  Program p = DeclOnly();
  Database db;
  Fact good;
  good.pred = p.FindPredicate("sum_pred");
  good.key = {Value::Symbol("a")};
  good.cost = Value::Real(0.25);
  EXPECT_TRUE(db.AddFact(good).ok());

  Fact bad = good;
  bad.cost = Value::Real(-1);  // outside sum_real
  EXPECT_FALSE(db.AddFact(bad).ok());

  Fact missing = good;
  missing.cost.reset();
  EXPECT_FALSE(db.AddFact(missing).ok());
}

TEST(DatabaseTest, CloneIsDeep) {
  Program p = DeclOnly();
  Database db;
  Fact f;
  f.pred = p.FindPredicate("s");
  f.key = Key("a", "b");
  f.cost = Value::Real(4);
  ASSERT_TRUE(db.AddFact(f).ok());

  Database copy = db.Clone();
  // Mutating the copy must not affect the original.
  copy.GetOrCreate(p.FindPredicate("s"))->Merge(Key("a", "b"), Value::Real(1));
  EXPECT_DOUBLE_EQ(
      copy.Find(p.FindPredicate("s"))->Find(Key("a", "b"))->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(
      db.Find(p.FindPredicate("s"))->Find(Key("a", "b"))->AsDouble(), 4.0);
}

TEST(DatabaseTest, ToStringSortsFacts) {
  Program p = DeclOnly();
  Database db;
  db.GetOrCreate(p.FindPredicate("e"))->Merge(Key("b", "b"), Value());
  db.GetOrCreate(p.FindPredicate("e"))->Merge(Key("a", "a"), Value());
  EXPECT_EQ(db.ToString(), "e(a, a).\ne(b, b).\n");
  EXPECT_EQ(db.TotalRows(), 2u);
}

}  // namespace
}  // namespace datalog
}  // namespace mad
