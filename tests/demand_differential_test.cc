// The demand differential gate: for every shipped example and a corpus of
// randomized workloads, the demand-rewritten point-query answer is
// byte-identical to the restriction of the full least model (computed
// independently by full evaluation), serially and with 8 threads, including
// models maintained through the incremental Update path — and point queries
// over nontrivial instances do strictly fewer derivations than full
// materialization.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/demand/demand.h"
#include "core/engine.h"
#include "datalog/database.h"
#include "datalog/parser.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

#ifndef MAD_SOURCE_DIR
#define MAD_SOURCE_DIR "."
#endif

namespace mad {
namespace {

using core::Engine;
using core::EvalOptions;
using core::QueryOptions;
using core::QueryResult;
using datalog::Atom;
using datalog::Database;
using datalog::Fact;
using datalog::Program;
using datalog::Term;
using datalog::Value;

Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

EvalOptions Opts(int threads) {
  EvalOptions o;
  o.num_threads = threads;
  return o;
}

QueryOptions Mode(QueryOptions::Mode m) {
  QueryOptions q;
  q.mode = m;
  return q;
}

/// Candidate query atoms for `program`: its declared .query directives plus,
/// for every head predicate with at least one key column, atoms binding the
/// first key column to (up to two) values drawn from the full model. The
/// synthesized atoms keep every other column free.
std::vector<Atom> CandidateQueries(const Program& program,
                                   const Database& full_model) {
  std::vector<Atom> out = program.queries();
  for (const datalog::PredicateInfo* pred : program.HeadPredicates()) {
    if (pred->key_arity() < 1) continue;
    const datalog::Relation* rel = full_model.Find(pred);
    if (rel == nullptr || rel->empty()) continue;
    std::set<Value> firsts;
    rel->ForEach([&](const datalog::Tuple& key, const Value&) {
      if (firsts.size() < 2) firsts.insert(key[0]);
    });
    for (const Value& v : firsts) {
      Atom a;
      a.pred = pred;
      a.args.push_back(Term::Const(v));
      for (int i = 1; i < pred->arity; ++i) {
        a.args.push_back(Term::Var("Q" + std::to_string(i)));
      }
      out.push_back(std::move(a));
    }
  }
  return out;
}

/// The differential check proper: for every candidate query, the kAuto
/// answer (demand rewrite when it certifies, full fallback otherwise) must
/// be byte-identical to the kFull oracle — an independently computed
/// restriction of the full least model. Returns the number of queries for
/// which the demand path was actually taken.
int CheckQueriesAgainstOracle(const Program& program, const Database& edb,
                              const EvalOptions& opts,
                              const std::string& label) {
  Engine engine(program, opts);
  auto full = engine.Run(edb.ShareForRead());
  EXPECT_TRUE(full.ok()) << label << ": " << full.status();
  if (!full.ok()) return 0;

  int demanded = 0;
  for (const Atom& q : CandidateQueries(program, full->db)) {
    auto oracle =
        engine.Query(q, edb.ShareForRead(), Mode(QueryOptions::Mode::kFull));
    EXPECT_TRUE(oracle.ok()) << label << " " << q.ToString() << ": "
                             << oracle.status();
    auto answer =
        engine.Query(q, edb.ShareForRead(), Mode(QueryOptions::Mode::kAuto));
    EXPECT_TRUE(answer.ok()) << label << " " << q.ToString() << ": "
                             << answer.status();
    if (!oracle.ok() || !answer.ok()) continue;
    EXPECT_EQ(answer->ToString(), oracle->ToString())
        << label << ": demanded slice diverges for " << q.ToString()
        << (answer->used_demand ? " (demand path)" : " (full fallback)");
    if (answer->used_demand) ++demanded;
  }
  return demanded;
}

// ---------------------------------------------------------------------------
// Every shipped example
// ---------------------------------------------------------------------------

TEST(DemandDifferentialTest, ExamplesMatchOracleSerialAndParallel) {
  std::string dir = std::string(MAD_SOURCE_DIR) + "/examples";
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".mdl") continue;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = datalog::ParseProgram(buffer.str());
    ASSERT_TRUE(parsed.ok()) << entry.path() << ": " << parsed.status();
    ++files;
    for (int threads : {1, 8}) {
      CheckQueriesAgainstOracle(
          *parsed, Database(), Opts(threads),
          entry.path().filename().string() + " x" + std::to_string(threads));
    }
  }
  EXPECT_GE(files, 8);
}

// ---------------------------------------------------------------------------
// Randomized workloads (50 instances across four program families)
// ---------------------------------------------------------------------------

TEST(DemandDifferentialTest, RandomGraphsMatchOracle) {
  Program program = MustParse(workloads::kShortestPathProgram);
  int demanded = 0;
  for (int i = 0; i < 20; ++i) {
    Random rng(9000 + i);
    workloads::Graph g;
    switch (i % 4) {
      case 0:
        g = workloads::RandomGraph(24, 90, {1.0, 10.0}, &rng);
        break;
      case 1:
        g = workloads::GridGraph(6, 5, {1.0, 10.0}, &rng);
        break;
      case 2:
        g = workloads::CycleGraph(18, 6, {1.0, 10.0}, &rng);
        break;
      default:
        g = workloads::LayeredDag(5, 5, 3, {1.0, 10.0}, &rng);
        break;
    }
    Database edb;
    ASSERT_TRUE(workloads::AddGraphFacts(program, g, &edb).ok());
    int threads = (i % 2 == 0) ? 1 : 8;
    demanded += CheckQueriesAgainstOracle(program, edb, Opts(threads),
                                          "graph seed " + std::to_string(i));
  }
  EXPECT_GT(demanded, 0) << "the demand path never engaged";
}

TEST(DemandDifferentialTest, RandomOwnershipMatchesOracle) {
  Program program = MustParse(workloads::kCompanyControlProgram);
  int demanded = 0;
  for (int i = 0; i < 12; ++i) {
    Random rng(9100 + i);
    workloads::OwnershipNetwork net =
        workloads::RandomOwnership(20 + i, 3, 0.4, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddOwnershipFacts(program, net, &edb).ok());
    int threads = (i % 2 == 0) ? 1 : 8;
    demanded += CheckQueriesAgainstOracle(program, edb, Opts(threads),
                                          "ownership seed " + std::to_string(i));
  }
  EXPECT_GT(demanded, 0);
}

TEST(DemandDifferentialTest, RandomCircuitsMatchOracle) {
  Program program = MustParse(workloads::kCircuitProgram);
  for (int i = 0; i < 9; ++i) {
    Random rng(9200 + i);
    workloads::Circuit c = workloads::RandomCircuit(5, 20, 3, 0.2, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddCircuitFacts(program, c, &edb).ok());
    int threads = (i % 2 == 0) ? 1 : 8;
    CheckQueriesAgainstOracle(program, edb, Opts(threads),
                              "circuit seed " + std::to_string(i));
  }
}

TEST(DemandDifferentialTest, RandomPartiesMatchOracle) {
  Program program = MustParse(workloads::kPartyProgram);
  for (int i = 0; i < 9; ++i) {
    Random rng(9300 + i);
    workloads::PartyInstance p = workloads::RandomParty(24, 4.0, 3, 0.5, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddPartyFacts(program, p, &edb).ok());
    int threads = (i % 2 == 0) ? 1 : 8;
    CheckQueriesAgainstOracle(program, edb, Opts(threads),
                              "party seed " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Incremental Update path
// ---------------------------------------------------------------------------

/// The full model's restriction rendered exactly like QueryResult::ToString.
std::string RestrictionOf(const Database& db,
                          const datalog::PredicateInfo* pred,
                          const Value& first_key) {
  std::vector<std::string> lines;
  const datalog::Relation* rel = db.Find(pred);
  if (rel != nullptr) {
    rel->ForEach([&](const datalog::Tuple& key, const Value& cost) {
      if (!(key[0] == first_key)) return;
      Fact f;
      f.pred = pred;
      f.key = key;
      if (pred->has_cost) f.cost = cost;
      lines.push_back(f.ToString());
    });
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

TEST(DemandDifferentialTest, UpdateMaintainedModelMatchesDemandSlice) {
  Program program = MustParse(workloads::kShortestPathProgram);
  const datalog::PredicateInfo* arc = program.FindPredicate("arc");
  const datalog::PredicateInfo* s = program.FindPredicate("s");
  ASSERT_NE(arc, nullptr);
  ASSERT_NE(s, nullptr);

  for (int seed = 0; seed < 4; ++seed) {
    Random rng(9400 + seed);
    workloads::Graph g = workloads::RandomGraph(30, 140, {1.0, 10.0}, &rng);

    // Split the arcs: two thirds as the initial EDB, the rest arriving as
    // incremental inserts.
    std::vector<Fact> initial;
    std::vector<Fact> extra;
    int n = 0;
    for (int u = 0; u < g.num_nodes; ++u) {
      for (const auto& e : g.adj[u]) {
        Fact f;
        f.pred = arc;
        f.key = {Value::Symbol(baselines::Graph::NodeName(u)),
                 Value::Symbol(baselines::Graph::NodeName(e.to))};
        f.cost = Value::Real(e.weight);
        (n++ % 3 == 2 ? extra : initial).push_back(std::move(f));
      }
    }

    int threads = (seed % 2 == 0) ? 1 : 8;
    Engine engine(program, Opts(threads));

    // Full path: initial Run, then the incremental Update closure.
    Database initial_edb;
    for (const Fact& f : initial) ASSERT_TRUE(initial_edb.AddFact(f).ok());
    auto maintained = engine.Run(std::move(initial_edb));
    ASSERT_TRUE(maintained.ok()) << maintained.status();
    auto delta = engine.Update(&*maintained, extra);
    ASSERT_TRUE(delta.ok()) << delta.status();

    // Demand path: a point query over the post-insert EDB.
    Database all_edb;
    for (const Fact& f : initial) ASSERT_TRUE(all_edb.AddFact(f).ok());
    for (const Fact& f : extra) ASSERT_TRUE(all_edb.AddFact(f).ok());
    Atom q;
    q.pred = s;
    q.args = {Term::Const(Value::Symbol("n0")), Term::Var("Y"),
              Term::Var("C")};
    auto answer = engine.Query(q, std::move(all_edb),
                               Mode(QueryOptions::Mode::kDemand));
    ASSERT_TRUE(answer.ok()) << answer.status();
    EXPECT_TRUE(answer->used_demand);
    EXPECT_EQ(answer->ToString(),
              RestrictionOf(maintained->db, s, Value::Symbol("n0")))
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Point queries do strictly less work
// ---------------------------------------------------------------------------

TEST(DemandDifferentialTest, PointQueriesDeriveStrictlyLess) {
  Program program = MustParse(workloads::kShortestPathProgram);
  const datalog::PredicateInfo* s = program.FindPredicate("s");
  for (int seed = 0; seed < 3; ++seed) {
    Random rng(9500 + seed);
    workloads::Graph g = workloads::RandomGraph(60, 240, {1.0, 10.0}, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddGraphFacts(program, g, &edb).ok());
    Engine engine(program, Opts(1));
    Atom q;
    q.pred = s;
    q.args = {Term::Const(Value::Symbol("n0")), Term::Var("Y"),
              Term::Var("C")};
    auto full =
        engine.Query(q, edb.ShareForRead(), Mode(QueryOptions::Mode::kFull));
    ASSERT_TRUE(full.ok()) << full.status();
    auto sliced =
        engine.Query(q, edb.ShareForRead(), Mode(QueryOptions::Mode::kDemand));
    ASSERT_TRUE(sliced.ok()) << sliced.status();
    EXPECT_TRUE(sliced->used_demand);
    EXPECT_EQ(sliced->ToString(), full->ToString());
    EXPECT_LT(sliced->stats.derivations, full->stats.derivations)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace mad
