// The demand-analysis layer (analysis/demand): query patterns, the certified
// magic-sets rewrite, its structural certifier, and an end-to-end check that
// the demanded slice of the rewritten least model equals the original's.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/demand/demand.h"
#include "analysis/dependency_graph.h"
#include "core/engine.h"
#include "datalog/database.h"
#include "datalog/parser.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace analysis {
namespace demand {
namespace {

using datalog::Atom;
using datalog::Database;
using datalog::Fact;
using datalog::Program;
using datalog::Value;

Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

Atom MustParseQuery(const Program& program, std::string_view text) {
  auto a = datalog::ParseQueryAtom(program, text);
  EXPECT_TRUE(a.ok()) << a.status();
  return std::move(a).value();
}

DemandRewrite RewriteFor(const Program& program, std::string_view pred,
                         std::string adornment) {
  DependencyGraph graph(program);
  DemandPattern pattern{program.FindPredicate(pred), std::move(adornment)};
  EXPECT_NE(pattern.pred, nullptr);
  return RewriteForPattern(program, graph, pattern);
}

// ---------------------------------------------------------------------------
// PatternForQuery
// ---------------------------------------------------------------------------

TEST(DemandPatternTest, ConstantsAreBoundVariablesFree) {
  Program program = MustParse(workloads::kShortestPathProgram);
  bool widened = true;
  DemandPattern p =
      PatternForQuery(MustParseQuery(program, "s(n0, Y, C)"), &widened);
  EXPECT_EQ(p.pred, program.FindPredicate("s"));
  EXPECT_EQ(p.adornment, "bf");
  EXPECT_FALSE(widened);
  EXPECT_TRUE(p.HasBound());
  EXPECT_EQ(p.BoundCount(), 1);
  EXPECT_EQ(p.ToString(), "s^bf");
}

TEST(DemandPatternTest, AnonymousVariablesAreFree) {
  Program program = MustParse(workloads::kShortestPathProgram);
  bool widened = true;
  DemandPattern p =
      PatternForQuery(MustParseQuery(program, "s(_, _, _)"), &widened);
  EXPECT_EQ(p.adornment, "ff");
  EXPECT_FALSE(widened);
  EXPECT_FALSE(p.HasBound());
}

TEST(DemandPatternTest, BoundCostColumnWidensButKeysStayBound) {
  Program program = MustParse(workloads::kShortestPathProgram);
  bool widened = false;
  DemandPattern p =
      PatternForQuery(MustParseQuery(program, "s(n0, n1, 3.0)"), &widened);
  EXPECT_EQ(p.adornment, "bb");
  EXPECT_TRUE(widened) << "a constant cost column must widen (MAD027)";
}

// ---------------------------------------------------------------------------
// RewriteForPattern on the paper's shortest-path program
// ---------------------------------------------------------------------------

TEST(DemandRewriteTest, ShortestPathBoundSourceRewrites) {
  Program program = MustParse(workloads::kShortestPathProgram);
  DemandRewrite rw = RewriteFor(program, "s", "bf");
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;

  // The cone of s^bf: s's aggregate ranges over path (first key column
  // bound), and path recurses back through s. The cost columns stay free.
  std::set<std::string> pats;
  for (const DemandPattern& p : rw.patterns) pats.insert(p.ToString());
  EXPECT_EQ(pats, (std::set<std::string>{"s^bf", "path^bff"}));

  ASSERT_NE(rw.seed_pred, nullptr);
  EXPECT_EQ(rw.seed_pred->name, "m_s_bf");
  EXPECT_EQ(rw.seed_pred->arity, 1);
  EXPECT_TRUE(rw.seed_pred->is_magic);
  EXPECT_FALSE(rw.seed_pred->has_cost);
  EXPECT_EQ(rw.bound_key_positions, (std::vector<int>{0}));
  EXPECT_TRUE(rw.unreachable_rules.empty());

  // Every original rule has a guarded copy, plus magic rules on top.
  EXPECT_EQ(rw.copy_sources.size(), program.rules().size());
  EXPECT_FALSE(rw.magic_sources.empty());
  EXPECT_EQ(rw.rewritten.rules().size(),
            rw.copy_sources.size() + rw.magic_sources.size());

  // The certifier is already run internally; it must also pass standalone.
  EXPECT_TRUE(CertifyRewrite(program, rw).ok());
}

TEST(DemandRewriteTest, PredicateIdsAlignWithOriginal) {
  Program program = MustParse(workloads::kShortestPathProgram);
  DemandRewrite rw = RewriteFor(program, "s", "bf");
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;
  ASSERT_GE(rw.rewritten.predicates().size(), program.predicates().size());
  for (size_t i = 0; i < program.predicates().size(); ++i) {
    const auto& orig = *program.predicates()[i];
    const auto& copy = *rw.rewritten.predicates()[i];
    EXPECT_EQ(orig.id, copy.id);
    EXPECT_EQ(orig.name, copy.name);
    EXPECT_EQ(orig.arity, copy.arity);
    EXPECT_EQ(orig.has_cost, copy.has_cost);
  }
  for (size_t i = program.predicates().size();
       i < rw.rewritten.predicates().size(); ++i) {
    EXPECT_TRUE(rw.rewritten.predicates()[i]->is_magic);
  }
}

TEST(DemandRewriteTest, AllFreePatternIsUnguardedConeRestriction) {
  Program program = MustParse(workloads::kShortestPathProgram);
  DemandRewrite rw = RewriteFor(program, "s", "ff");
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;
  EXPECT_EQ(rw.seed_pred, nullptr);
  EXPECT_TRUE(rw.magic_sources.empty());
  // No magic predicates and no guards: same predicates, same rule count.
  EXPECT_EQ(rw.rewritten.predicates().size(), program.predicates().size());
  EXPECT_EQ(rw.rewritten.rules().size(), program.rules().size());
  for (const RuleCopySource& c : rw.copy_sources) {
    EXPECT_FALSE(c.guarded);
  }
}

TEST(DemandRewriteTest, RulesOutsideTheConeAreDropped) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl t(x, y)
    .decl src(x)
    .decl other(x)
    t(X, Y) :- e(X, Y).
    t(X, Y) :- t(X, Z), e(Z, Y).
    other(X) :- src(X).
  )");
  DemandRewrite rw = RewriteFor(program, "t", "bf");
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;
  EXPECT_EQ(rw.unreachable_rules, (std::vector<int>{2}));
  EXPECT_EQ(rw.copy_sources.size(), 2u);
}

TEST(DemandRewriteTest, BailsOutOnMagicNameCollision) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl t(x, y)
    .decl m_t_bf(x)
    t(X, Y) :- e(X, Y).
    m_t_bf(X) :- t(X, X).
  )");
  DemandRewrite rw = RewriteFor(program, "t", "bf");
  EXPECT_FALSE(rw.ok);
  EXPECT_FALSE(rw.bailout_reason.empty());
}

TEST(DemandRewriteTest, BailsOutOnAlreadyRewrittenProgram) {
  Program program = MustParse(workloads::kShortestPathProgram);
  DemandRewrite rw = RewriteFor(program, "s", "bf");
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;
  DemandRewrite again = RewriteFor(rw.rewritten, "s", "bf");
  EXPECT_FALSE(again.ok);
  EXPECT_FALSE(again.bailout_reason.empty());
}

TEST(DemandRewriteTest, NegatedPredicateDemandedAllFree) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl bad(x)
    .decl mark(x)
    .decl t(x, y)
    bad(X) :- mark(X).
    t(X, Y) :- e(X, Y), !bad(Y).
    t(X, Y) :- t(X, Z), e(Z, Y).
  )");
  DemandRewrite rw = RewriteFor(program, "t", "bf");
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;
  std::set<std::string> pats;
  for (const DemandPattern& p : rw.patterns) pats.insert(p.ToString());
  // bad sits under negation: its cone is evaluated in full (all-free), never
  // sliced — restricting a complement would be unsound.
  EXPECT_TRUE(pats.count("bad^f")) << rw.ToString();
  EXPECT_TRUE(pats.count("t^bf"));
}

TEST(DemandCertifyTest, RejectsFabricatedRewrite) {
  Program program = MustParse(workloads::kShortestPathProgram);
  DemandRewrite fake;
  fake.ok = true;
  fake.query_pattern = DemandPattern{program.FindPredicate("s"), "bf"};
  EXPECT_FALSE(CertifyRewrite(program, fake).ok());
}

TEST(DemandCertifyTest, RejectsDroppedCopy) {
  Program program = MustParse(workloads::kShortestPathProgram);
  DemandRewrite rw = RewriteFor(program, "s", "bf");
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;
  // Claim a rule is in the cone that the rewrite never copied: completeness
  // check 4 must notice the missing copy.
  rw.patterns.insert(DemandPattern{program.FindPredicate("path"), "fff"});
  EXPECT_FALSE(CertifyRewrite(program, rw).ok());
}

// ---------------------------------------------------------------------------
// End to end: the demanded slice equals the full model's restriction
// ---------------------------------------------------------------------------

std::vector<std::string> SliceOf(const datalog::Database& db,
                                 const datalog::PredicateInfo* pred,
                                 const std::string& source) {
  std::vector<std::string> out;
  const datalog::Relation* rel = db.Find(pred);
  if (rel == nullptr) return out;
  rel->ForEach([&](const datalog::Tuple& key, const Value& cost) {
    if (key[0].symbol_name() != source) return;
    out.push_back(std::string(key[1].symbol_name()) + "=" + cost.ToString());
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DemandEndToEndTest, ShortestPathSliceMatchesFullModel) {
  Program program = MustParse(workloads::kShortestPathProgram);
  Random rng(42);
  workloads::Graph g = workloads::RandomGraph(30, 120, {1.0, 10.0}, &rng);
  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(program, g, &edb).ok());

  core::Engine full_engine(program, {});
  auto full = full_engine.Run(edb.Clone());
  ASSERT_TRUE(full.ok()) << full.status();

  DemandRewrite rw = RewriteFor(program, "s", "bf");
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;
  Database demand_edb = edb.Clone();
  Fact seed;
  seed.pred = rw.seed_pred;
  seed.key = {Value::Symbol("n0")};
  ASSERT_TRUE(demand_edb.AddFact(seed).ok());

  core::Engine demand_engine(rw.rewritten, {});
  auto sliced = demand_engine.Run(std::move(demand_edb));
  ASSERT_TRUE(sliced.ok()) << sliced.status();

  EXPECT_EQ(SliceOf(sliced->db, rw.rewritten.FindPredicate("s"), "n0"),
            SliceOf(full->db, program.FindPredicate("s"), "n0"));
  EXPECT_LT(sliced->stats.derivations, full->stats.derivations)
      << "a single-source query must do strictly less work";
}

TEST(DemandEndToEndTest, CompanyControlSliceMatchesFullModel) {
  Program program = MustParse(workloads::kCompanyControlProgram);
  Random rng(7);
  workloads::OwnershipNetwork net =
      workloads::RandomOwnership(24, 3, 0.5, &rng);
  Database edb;
  ASSERT_TRUE(workloads::AddOwnershipFacts(program, net, &edb).ok());

  core::Engine full_engine(program, {});
  auto full = full_engine.Run(edb.Clone());
  ASSERT_TRUE(full.ok()) << full.status();

  DemandRewrite rw = RewriteFor(program, "c", "bf");
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;
  Database demand_edb = edb.Clone();
  Fact seed;
  seed.pred = rw.seed_pred;
  seed.key = {Value::Symbol(workloads::OwnershipNetwork::CompanyName(0))};
  ASSERT_TRUE(demand_edb.AddFact(seed).ok());

  core::Engine demand_engine(rw.rewritten, {});
  auto sliced = demand_engine.Run(std::move(demand_edb));
  ASSERT_TRUE(sliced.ok()) << sliced.status();

  const std::string owner = workloads::OwnershipNetwork::CompanyName(0);
  EXPECT_EQ(SliceOf(sliced->db, rw.rewritten.FindPredicate("c"), owner),
            SliceOf(full->db, program.FindPredicate("c"), owner));
}

// ---------------------------------------------------------------------------
// .query directive plumbing
// ---------------------------------------------------------------------------

TEST(QueryDirectiveTest, ParsesAndRoundTrips) {
  Program program = MustParse(
      ".decl e(x, y)\n.decl t(x, y)\nt(X, Y) :- e(X, Y).\n"
      ".query t(a, Y).\n");
  ASSERT_EQ(program.queries().size(), 1u);
  EXPECT_EQ(program.queries()[0].pred, program.FindPredicate("t"));
  EXPECT_NE(program.ToString().find(".query t(a, Y)."), std::string::npos);
}

TEST(QueryDirectiveTest, RejectsUndeclaredPredicate) {
  auto p = datalog::ParseProgram(".decl e(x, y)\n.query nope(X).\n");
  EXPECT_FALSE(p.ok());
}

TEST(QueryDirectiveTest, ParseQueryAtomRejectsTrailingInput) {
  Program program = MustParse(".decl e(x, y)\n");
  EXPECT_FALSE(datalog::ParseQueryAtom(program, "e(a, b). e(b, c)").ok());
  EXPECT_FALSE(datalog::ParseQueryAtom(program, "nope(a)").ok());
  EXPECT_TRUE(datalog::ParseQueryAtom(program, "e(a, Y)").ok());
}

}  // namespace
}  // namespace demand
}  // namespace analysis
}  // namespace mad
