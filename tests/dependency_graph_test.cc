#include <gtest/gtest.h>

#include "analysis/dependency_graph.h"
#include "datalog/parser.h"
#include "workloads/programs.h"

namespace mad {
namespace analysis {
namespace {

using datalog::ParseProgram;
using datalog::Program;

Program MustParse(std::string_view text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

const Component& ComponentFor(const DependencyGraph& g, const Program& p,
                              const char* pred) {
  return g.components()[g.ComponentOf(p.FindPredicate(pred))];
}

TEST(DependencyGraphTest, ShortestPathComponents) {
  Program p = MustParse(workloads::kShortestPathProgram);
  DependencyGraph g(p);
  // path and s are mutually recursive; arc is below them.
  EXPECT_EQ(g.ComponentOf(p.FindPredicate("path")),
            g.ComponentOf(p.FindPredicate("s")));
  EXPECT_NE(g.ComponentOf(p.FindPredicate("arc")),
            g.ComponentOf(p.FindPredicate("s")));
  const Component& sp = ComponentFor(g, p, "s");
  EXPECT_TRUE(sp.recursive);
  EXPECT_TRUE(sp.recursive_aggregation);
  EXPECT_FALSE(sp.recursive_negation);
  EXPECT_EQ(sp.rule_indices.size(), 3u);
}

TEST(DependencyGraphTest, BottomUpTopologicalOrder) {
  Program p = MustParse(workloads::kShortestPathProgram);
  DependencyGraph g(p);
  // arc's component must come before the {path, s} component.
  EXPECT_LT(g.ComponentOf(p.FindPredicate("arc")),
            g.ComponentOf(p.FindPredicate("s")));
}

TEST(DependencyGraphTest, CompanyControlIsOneBigScc) {
  Program p = MustParse(workloads::kCompanyControlProgram);
  DependencyGraph g(p);
  int cv = g.ComponentOf(p.FindPredicate("cv"));
  EXPECT_EQ(cv, g.ComponentOf(p.FindPredicate("m")));
  EXPECT_EQ(cv, g.ComponentOf(p.FindPredicate("c")));
  EXPECT_NE(cv, g.ComponentOf(p.FindPredicate("s")));
  EXPECT_TRUE(g.components()[cv].recursive_aggregation);
}

TEST(DependencyGraphTest, StratifiedProgramHasNoRecursiveAggregation) {
  Program p = MustParse(R"(
.decl r(x, c: max_real)
.decl top(x, c: max_real)
top(X, C) :- C =r max D : r(X, D).
)");
  DependencyGraph g(p);
  const Component& top = ComponentFor(g, p, "top");
  EXPECT_FALSE(top.recursive);
  EXPECT_FALSE(top.recursive_aggregation);
}

TEST(DependencyGraphTest, NegationEdgeFlagged) {
  Program p = MustParse(R"(
.decl e(x)
.decl a(x)
.decl b(x)
a(X) :- e(X), !b(X).
b(X) :- e(X), a(X).
)");
  DependencyGraph g(p);
  const Component& c = ComponentFor(g, p, "a");
  EXPECT_TRUE(c.recursive);
  EXPECT_TRUE(c.recursive_negation);
}

TEST(DependencyGraphTest, IsCdbForClassifiesOccurrences) {
  Program p = MustParse(workloads::kShortestPathProgram);
  DependencyGraph g(p);
  const auto& rules = p.rules();
  // Rule 1: path(...) :- s(...), arc(...): s is CDB, arc is LDB.
  const datalog::Rule& rule = rules[1];
  EXPECT_TRUE(g.IsCdbFor(rule, p.FindPredicate("s")));
  EXPECT_FALSE(g.IsCdbFor(rule, p.FindPredicate("arc")));
}

TEST(DependencyGraphTest, SelfRecursionIsRecursive) {
  Program p = MustParse(R"(
.decl e(x, y)
.decl tc(x, y)
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), e(Z, Y).
)");
  DependencyGraph g(p);
  const Component& c = ComponentFor(g, p, "tc");
  EXPECT_TRUE(c.recursive);
  EXPECT_FALSE(c.recursive_aggregation);
  EXPECT_EQ(c.predicates.size(), 1u);
}

TEST(DependencyGraphTest, DeclaredButUnusedPredicateGetsComponent) {
  Program p = MustParse(".decl lonely(x)");
  DependencyGraph g(p);
  EXPECT_GE(g.ComponentOf(p.FindPredicate("lonely")), 0);
}

TEST(DependencyGraphTest, ToStringMentionsFlags) {
  Program p = MustParse(workloads::kShortestPathProgram);
  DependencyGraph g(p);
  std::string s = g.ToString();
  EXPECT_NE(s.find("recursive-aggregation"), std::string::npos);
}

}  // namespace
}  // namespace analysis
}  // namespace mad
