// ServerState durability: WAL-before-update, checkpoint/restore, crash
// recovery at every byte boundary, ENOSPC degradation with reads still
// serving, writer-poison recovery via the `recover` verb, and the
// differential certification of recovered state.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "server/state.h"
#include "util/posix_file.h"

namespace mad {
namespace server {
namespace {

constexpr const char* kShortestPath = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(a, b, 1).
arc(b, c, 2).
arc(a, c, 9).
)";

// Update-safe overall, but `cap` is increase-unsafe: its cost is consumed
// antitonically (C < 10), so raising an existing key fails Engine::Update
// *after* merging began — the writer-poison path.
constexpr const char* kPoisonable = R"(
.decl cap(x, c: max_real)
.decl warn(x)
warn(X) :- cap(X, C), C < 10.
cap(a, 1).
)";

std::string TempDir() {
  std::string tmpl = ::testing::TempDir() + "mad_dur_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

Json Request(const char* verb) {
  Json j = Json::Object();
  j.Set("verb", Json::Str(verb));
  return j;
}

Json InsertRequest(const std::string& facts) {
  Json j = Request("insert");
  j.Set("facts", Json::Str(facts));
  return j;
}

std::string ErrorCode(const Json& response) {
  return response.At("error").StrOr("code", "");
}

DurabilityOptions Durable(const std::string& dir,
                          util::IoHooks* hooks = nullptr) {
  DurabilityOptions d;
  d.data_dir = dir;
  d.hooks = hooks;
  // Unit tests trigger checkpoints explicitly (or per-test); the defaults
  // would checkpoint mid-test and complicate byte accounting.
  d.checkpoint_every_epochs = 0;
  d.checkpoint_every_bytes = 0;
  return d;
}

StatusOr<std::unique_ptr<ServerState>> LoadDurable(
    const char* text, const DurabilityOptions& durability) {
  ServerState::LoadOptions options;
  options.durability = durability;
  return ServerState::Load(text, options);
}

std::string Dump(ServerState* state) {
  Json r = state->Handle(Request("dump"));
  EXPECT_TRUE(r.At("ok").boolean) << r.Dump();
  return r.StrOr("model", "");
}

TEST(DurabilityTest, RestartReplaysAckedBatchesExactly) {
  std::string dir = TempDir();
  std::string model;
  int64_t epoch = 0;
  {
    auto state = LoadDurable(kShortestPath, Durable(dir));
    ASSERT_TRUE(state.ok()) << state.status();
    ASSERT_TRUE(
        (*state)->Handle(InsertRequest("arc(c, d, 5).")).At("ok").boolean);
    ASSERT_TRUE(
        (*state)->Handle(InsertRequest("arc(a, d, 100).\narc(d, e, 1)."))
            .At("ok")
            .boolean);
    epoch = (*state)->epoch();
    model = Dump(state->get());
  }  // destructor = clean crash (no shutdown protocol exists to get wrong)

  auto revived = LoadDurable(kShortestPath, Durable(dir));
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ((*revived)->epoch(), epoch);
  EXPECT_EQ(Dump(revived->get()), model);

  Json stats = (*revived)->Handle(Request("stats"));
  const Json& d = stats.At("durability");
  EXPECT_TRUE(d.At("enabled").boolean);
  EXPECT_EQ(d.IntOr("replayed_records", -1), 2);
  EXPECT_EQ(d.IntOr("truncated_tail_records", -1), 0);
}

TEST(DurabilityTest, RecoveredModelEqualsFromScratchOracle) {
  std::string dir = TempDir();
  const std::vector<std::string> batches = {
      "arc(c, d, 5).", "arc(d, e, 1).", "arc(a, e, 50)."};
  {
    auto state = LoadDurable(kShortestPath, Durable(dir));
    ASSERT_TRUE(state.ok());
    for (const std::string& b : batches) {
      ASSERT_TRUE((*state)->Handle(InsertRequest(b)).At("ok").boolean);
    }
  }
  auto revived = LoadDurable(kShortestPath, Durable(dir));
  ASSERT_TRUE(revived.ok()) << revived.status();

  // Independent oracle: a non-durable server fed the same history.
  auto oracle = ServerState::Load(kShortestPath, {});
  ASSERT_TRUE(oracle.ok());
  for (const std::string& b : batches) {
    ASSERT_TRUE((*oracle)->Handle(InsertRequest(b)).At("ok").boolean);
  }
  EXPECT_EQ(Dump(revived->get()), Dump(oracle->get()));
}

/// Byte-budgeted crash: permits writes until the budget runs out, then
/// fails everything (including fsync) — the injected process death.
class CrashAtByte : public util::IoHooks {
 public:
  explicit CrashAtByte(int64_t budget) : budget_(budget) {}

  StatusOr<size_t> BeforeWrite(const std::string& path, size_t n) override {
    (void)path;
    if (budget_ >= static_cast<int64_t>(n)) {
      budget_ -= static_cast<int64_t>(n);
      return n;
    }
    size_t allowed = budget_ > 0 ? static_cast<size_t>(budget_) : 0;
    budget_ = 0;
    crashed_ = true;
    return allowed;
  }

  Status BeforeSync(const std::string& path) override {
    (void)path;
    if (crashed_) return Status::Internal("crashed before fsync");
    return Status::OK();
  }

 private:
  int64_t budget_;
  bool crashed_ = false;
};

// The acceptance-criterion sweep: crash the WAL at every byte boundary of a
// three-batch history. After each simulated crash the revived server must
// (a) recover exactly the acknowledged prefix — never more, never less,
// (b) match a from-scratch oracle of that prefix byte-for-byte, and
// (c) pass its own differential recovery certification (verify_recovery is
// on by default in these loads).
TEST(DurabilityTest, CrashAtEveryByteBoundaryRecoversAckedPrefix) {
  const std::vector<std::string> batches = {
      "arc(c, d, 5).", "arc(d, e, 1).", "arc(a, e, 50)."};

  // Dry run with unlimited budget to learn the total WAL size.
  int64_t total = 0;
  {
    std::string dir = TempDir();
    auto state = LoadDurable(kShortestPath, Durable(dir));
    ASSERT_TRUE(state.ok());
    for (const std::string& b : batches) {
      ASSERT_TRUE((*state)->Handle(InsertRequest(b)).At("ok").boolean);
    }
    Json stats = (*state)->Handle(Request("stats"));
    total = stats.At("durability").IntOr("wal_bytes", 0) + 8;  // + magic
    ASSERT_GT(total, 8);
  }

  // Oracles for every acked-prefix length.
  std::vector<std::string> oracle_models;
  {
    auto oracle = ServerState::Load(kShortestPath, {});
    ASSERT_TRUE(oracle.ok());
    oracle_models.push_back(Dump(oracle->get()));
    for (const std::string& b : batches) {
      ASSERT_TRUE((*oracle)->Handle(InsertRequest(b)).At("ok").boolean);
      oracle_models.push_back(Dump(oracle->get()));
    }
  }

  for (int64_t budget = 0; budget <= total; ++budget) {
    std::string dir = TempDir();
    CrashAtByte hooks(budget);
    int64_t acked = 0;
    {
      auto state = LoadDurable(kShortestPath, Durable(dir, &hooks));
      if (!state.ok()) {
        // The crash hit segment creation; nothing was ever served. Recovery
        // from the torn directory must still come up empty and sound.
        auto revived = LoadDurable(kShortestPath, Durable(dir));
        ASSERT_TRUE(revived.ok()) << "budget " << budget << ": "
                                  << revived.status();
        EXPECT_EQ((*revived)->epoch(), 0) << "budget " << budget;
        EXPECT_EQ(Dump(revived->get()), oracle_models[0]);
        continue;
      }
      for (const std::string& b : batches) {
        Json r = (*state)->Handle(InsertRequest(b));
        if (!r.At("ok").boolean) {
          EXPECT_EQ(ErrorCode(r), "DurabilityDegraded")
              << "budget " << budget << ": " << r.Dump();
          break;
        }
        ++acked;
      }
    }
    auto revived = LoadDurable(kShortestPath, Durable(dir));
    ASSERT_TRUE(revived.ok()) << "budget " << budget << ": "
                              << revived.status();
    EXPECT_EQ((*revived)->epoch(), acked) << "budget " << budget;
    EXPECT_EQ(Dump(revived->get()),
              oracle_models[static_cast<size_t>(acked)])
        << "budget " << budget;
  }
}

/// Flips to "disk full" on demand; recovers when the flag clears.
class DiskFull : public util::IoHooks {
 public:
  StatusOr<size_t> BeforeWrite(const std::string& path, size_t n) override {
    (void)path;
    if (full_) return Status::Internal("no space left on device");
    return n;
  }
  void set_full(bool full) { full_ = full; }

 private:
  bool full_ = false;
};

TEST(DurabilityTest, DiskFullDegradesWritesWhileReadsKeepServing) {
  std::string dir = TempDir();
  DiskFull hooks;
  auto state = LoadDurable(kShortestPath, Durable(dir, &hooks));
  ASSERT_TRUE(state.ok()) << state.status();
  ASSERT_TRUE(
      (*state)->Handle(InsertRequest("arc(c, d, 5).")).At("ok").boolean);
  const std::string model_before = Dump(state->get());

  hooks.set_full(true);
  Json rejected = (*state)->Handle(InsertRequest("arc(d, e, 1)."));
  EXPECT_FALSE(rejected.At("ok").boolean);
  EXPECT_EQ(ErrorCode(rejected), "DurabilityDegraded");
  // Structured rejection, not a dropped write: later inserts refuse too.
  Json still = (*state)->Handle(InsertRequest("arc(e, f, 1)."));
  EXPECT_EQ(ErrorCode(still), "DurabilityDegraded");

  // Reads keep serving the last sound snapshot.
  EXPECT_EQ(Dump(state->get()), model_before);
  Json q = Request("query");
  q.Set("pred", Json::Str("s"));
  EXPECT_TRUE((*state)->Handle(q).At("ok").boolean);
  Json stats = (*state)->Handle(Request("stats"));
  EXPECT_TRUE(stats.At("durability").At("degraded").boolean);

  // Space returns; `recover` rotates to a fresh segment and re-enables
  // writes. The rejected batches were never applied, so the model is still
  // exactly the acked prefix.
  hooks.set_full(false);
  Json recovered = (*state)->Handle(Request("recover"));
  ASSERT_TRUE(recovered.At("ok").boolean) << recovered.Dump();
  EXPECT_TRUE(recovered.At("wal_restored").boolean);
  EXPECT_FALSE(recovered.At("degraded").boolean);
  ASSERT_TRUE(
      (*state)->Handle(InsertRequest("arc(d, e, 1).")).At("ok").boolean);
  EXPECT_EQ((*state)->epoch(), 2);

  // And the whole story survives a restart.
  state->reset();
  auto revived = LoadDurable(kShortestPath, Durable(dir));
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ((*revived)->epoch(), 2);
}

TEST(DurabilityTest, PoisonedWriterRecoversFromSnapshotAndWalStaysSound) {
  std::string dir = TempDir();
  auto state = LoadDurable(kPoisonable, Durable(dir));
  ASSERT_TRUE(state.ok()) << state.status();

  // New keys are safe.
  ASSERT_TRUE((*state)->Handle(InsertRequest("cap(b, 3).")).At("ok").boolean);
  const std::string model_before = Dump(state->get());

  // Raising an existing key trips the increase guard mid-merge: poison.
  Json poisoning = (*state)->Handle(InsertRequest("cap(a, 5)."));
  ASSERT_FALSE(poisoning.At("ok").boolean);
  EXPECT_TRUE((*state)->poisoned());

  // Writes refuse with a hint; reads serve the pre-poison snapshot.
  Json refused = (*state)->Handle(InsertRequest("cap(c, 4)."));
  EXPECT_FALSE(refused.At("ok").boolean);
  EXPECT_NE(refused.At("error").StrOr("message", "").find("recover"),
            std::string::npos);
  EXPECT_EQ(Dump(state->get()), model_before);

  // `recover` rebuilds the writer from the published snapshot.
  Json recovered = (*state)->Handle(Request("recover"));
  ASSERT_TRUE(recovered.At("ok").boolean);
  EXPECT_TRUE(recovered.At("poison_cleared").boolean);
  EXPECT_FALSE((*state)->poisoned());

  // The writer is a fresh certified model again: inserts work and land on
  // exactly the state the snapshot promised.
  ASSERT_TRUE((*state)->Handle(InsertRequest("cap(c, 4).")).At("ok").boolean);
  EXPECT_EQ((*state)->epoch(), 2);

  // Restart: the abort record makes replay skip the poisoning batch, and
  // the differential verification (on by default) certifies the result.
  state->reset();
  auto revived = LoadDurable(kPoisonable, Durable(dir));
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ((*revived)->epoch(), 2);
  Json stats = (*revived)->Handle(Request("stats"));
  EXPECT_EQ(stats.At("durability").IntOr("skipped_aborted_batches", -1), 1);

  auto oracle = ServerState::Load(kPoisonable, {});
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE((*oracle)->Handle(InsertRequest("cap(b, 3).")).At("ok").boolean);
  ASSERT_TRUE((*oracle)->Handle(InsertRequest("cap(c, 4).")).At("ok").boolean);
  EXPECT_EQ(Dump(revived->get()), Dump(oracle->get()));
}

TEST(DurabilityTest, CheckpointShortensReplayAndPrunesSegments) {
  std::string dir = TempDir();
  DurabilityOptions opts = Durable(dir);
  opts.checkpoint_every_epochs = 2;
  {
    auto state = LoadDurable(kShortestPath, opts);
    ASSERT_TRUE(state.ok());
    for (const char* b :
         {"arc(c, d, 5).", "arc(d, e, 1).", "arc(a, e, 50)."}) {
      ASSERT_TRUE((*state)->Handle(InsertRequest(b)).At("ok").boolean);
    }
    Json stats = (*state)->Handle(Request("stats"));
    const Json& d = stats.At("durability");
    EXPECT_EQ(d.IntOr("checkpoints_written", -1), 1);
    EXPECT_EQ(d.IntOr("last_checkpoint_epoch", -1), 2);
  }
  auto revived = LoadDurable(kShortestPath, opts);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_EQ((*revived)->epoch(), 3);
  Json stats = (*revived)->Handle(Request("stats"));
  // Only the post-checkpoint record replays; epochs 1-2 restore from the
  // checkpoint image.
  EXPECT_EQ(stats.At("durability").IntOr("replayed_records", -1), 1);
  EXPECT_EQ(stats.At("durability").IntOr("last_checkpoint_epoch", -1), 2);
}

TEST(DurabilityTest, SyncVerbForcesCheckpointAndReportsDurableEpoch) {
  std::string dir = TempDir();
  auto state = LoadDurable(kShortestPath, Durable(dir));
  ASSERT_TRUE(state.ok());
  ASSERT_TRUE(
      (*state)->Handle(InsertRequest("arc(c, d, 5).")).At("ok").boolean);

  Json sync = Request("sync");
  sync.Set("checkpoint", Json::Bool(true));
  Json r = (*state)->Handle(sync);
  ASSERT_TRUE(r.At("ok").boolean) << r.Dump();
  EXPECT_EQ(r.IntOr("durable_epoch", -1), 1);
  Json stats = (*state)->Handle(Request("stats"));
  EXPECT_EQ(stats.At("durability").IntOr("last_checkpoint_epoch", -1), 1);
  EXPECT_EQ(stats.At("durability").IntOr("checkpoints_written", -1), 1);
}

TEST(DurabilityTest, RefusesDataDirOfDifferentProgram) {
  std::string dir = TempDir();
  DurabilityOptions opts = Durable(dir);
  opts.checkpoint_every_epochs = 1;  // force a checkpoint to exist
  {
    auto state = LoadDurable(kShortestPath, opts);
    ASSERT_TRUE(state.ok());
    ASSERT_TRUE(
        (*state)->Handle(InsertRequest("arc(c, d, 5).")).At("ok").boolean);
  }
  auto wrong = LoadDurable(kPoisonable, Durable(dir));
  EXPECT_FALSE(wrong.ok());
}

TEST(DurabilityTest, SyncWithoutDurabilityReportsDisabled) {
  auto state = ServerState::Load(kShortestPath, {});
  ASSERT_TRUE(state.ok());
  Json r = (*state)->Handle(Request("sync"));
  ASSERT_TRUE(r.At("ok").boolean);
  EXPECT_FALSE(r.At("durability_enabled").boolean);
  Json stats = (*state)->Handle(Request("stats"));
  EXPECT_FALSE(stats.At("durability").At("enabled").boolean);
}

}  // namespace
}  // namespace server
}  // namespace mad
