// Core semantics of the engine: minimal models (Section 3), iterated
// components (Section 6.3), default values, strategies, failure modes.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/programs.h"

namespace mad {
namespace core {
namespace {

using datalog::Tuple;
using datalog::Value;

ParsedRun MustRun(std::string_view text, EvalOptions options = {}) {
  auto run = ParseAndRun(text, options);
  EXPECT_TRUE(run.ok()) << run.status();
  return std::move(run).value();
}

std::optional<double> Cost(const ParsedRun& run, const char* pred,
                           std::vector<const char*> key) {
  Tuple t;
  for (const char* k : key) t.push_back(Value::Symbol(k));
  auto v = LookupCost(*run.program, run.result.db, pred, t);
  if (!v.has_value()) return std::nullopt;
  return v->AsDouble();
}

TEST(EngineTest, Example31MinimalModelExactly) {
  std::string text = std::string(workloads::kShortestPathProgram) +
                     "arc(a, b, 1).\narc(b, b, 0).\n";
  ParsedRun run = MustRun(text);
  // The unique minimal model M1 of Example 3.1 — note s(a,b,1), NOT the
  // non-minimal (⊑-wise) model M2's s(a,b,0).
  EXPECT_EQ(Cost(run, "s", {"a", "b"}), 1.0);
  EXPECT_EQ(Cost(run, "s", {"b", "b"}), 0.0);
  EXPECT_EQ(Cost(run, "path", {"a", "direct", "b"}), 1.0);
  EXPECT_EQ(Cost(run, "path", {"a", "b", "b"}), 1.0);
  EXPECT_EQ(Cost(run, "path", {"b", "direct", "b"}), 0.0);
  EXPECT_EQ(Cost(run, "path", {"b", "b", "b"}), 0.0);
  // Nothing else about s: s(b, a) has no path.
  EXPECT_FALSE(Cost(run, "s", {"b", "a"}).has_value());
}

TEST(EngineTest, AllStrategiesAgreeOnExample31) {
  std::string text = std::string(workloads::kShortestPathProgram) +
                     "arc(a, b, 1).\narc(b, b, 0).\n";
  std::string reference;
  for (Strategy s :
       {Strategy::kNaive, Strategy::kSemiNaive, Strategy::kGreedy}) {
    ParsedRun run = MustRun(text, {.strategy = s});
    std::string got = run.result.db.ToString();
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference) << "strategy " << StrategyName(s);
    }
  }
}

TEST(EngineTest, StratifiedAggregationOverLowerComponent) {
  ParsedRun run = MustRun(R"(
.decl record(s, c, g: max_real)
.decl s_avg(s, g: max_real)
s_avg(S, G) :- G =r avg D : record(S, C, D).
record(john, math, 80).
record(john, cs, 60).
record(mary, cs, 90).
)");
  EXPECT_EQ(Cost(run, "s_avg", {"john"}), 70.0);
  EXPECT_EQ(Cost(run, "s_avg", {"mary"}), 90.0);
}

TEST(EngineTest, MultiComponentPipelineRunsBottomUp) {
  // avg of class averages (Example 2.1's all-avg): two aggregation levels.
  ParsedRun run = MustRun(R"(
.decl record(s, c, g: max_real)
.decl c_avg(c, g: max_real)
.decl all_avg(g: max_real)
c_avg(C, G) :- G =r avg D : record(S, C, D).
all_avg(G) :- G =r avg D : c_avg(C, D).
record(john, math, 80).
record(mary, math, 40).
record(john, cs, 100).
)");
  EXPECT_EQ(Cost(run, "c_avg", {"math"}), 60.0);
  EXPECT_EQ(Cost(run, "c_avg", {"cs"}), 100.0);
  EXPECT_EQ(Cost(run, "all_avg", {}), 80.0);
}

TEST(EngineTest, CountVsRestrictedCountOnEmptyGroups) {
  // Example 2.1: class-count (=r) skips empty classes; alt-class-count (=)
  // reports 0 for them.
  ParsedRun run = MustRun(R"(
.decl courses(c)
.decl record(s, c)
.decl class_count(c, n: count_nat)
.decl alt_class_count(c, n: count_nat)
class_count(C, N) :- N =r count : record(S, C).
alt_class_count(C, N) :- courses(C), N = count : record(S, C).
courses(math). courses(art).
record(john, math).
record(mary, math).
)");
  EXPECT_EQ(Cost(run, "class_count", {"math"}), 2.0);
  EXPECT_FALSE(Cost(run, "class_count", {"art"}).has_value());
  EXPECT_EQ(Cost(run, "alt_class_count", {"math"}), 2.0);
  EXPECT_EQ(Cost(run, "alt_class_count", {"art"}), 0.0);
}

TEST(EngineTest, DefaultValuePredicateSynthesizesBottom) {
  ParsedRun run = MustRun(R"(
.decl wires(w)
.decl t(w, v: bool_or) default
.decl probe(w, v: bool_or)
probe(W, V) :- wires(W), t(W, V).
wires(w1).
wires(w2).
t(w1, 1).
)");
  EXPECT_EQ(Cost(run, "probe", {"w1"}), 1.0);
  EXPECT_EQ(Cost(run, "probe", {"w2"}), 0.0);  // default bottom
  // LookupCost also synthesizes defaults.
  EXPECT_EQ(Cost(run, "t", {"w2"}), 0.0);
}

TEST(EngineTest, NegationOnLowerComponent) {
  ParsedRun run = MustRun(R"(
.decl node(x)
.decl edge(x, y)
.decl has_out(x)
.decl sink(x)
has_out(X) :- edge(X, Y).
sink(X) :- node(X), !has_out(X).
node(a). node(b).
edge(a, b).
)");
  EXPECT_FALSE(Cost(run, "sink", {"a"}).has_value());
  EXPECT_TRUE(Cost(run, "sink", {"b"}).has_value());
}

TEST(EngineTest, NegationOnCostAtom) {
  ParsedRun run = MustRun(R"(
.decl val(x, v: max_real)
.decl item(x)
.decl not_five(x)
not_five(X) :- item(X), val(X, V), !val(X, 5).
item(a). item(b).
val(a, 5).
val(b, 7).
)");
  EXPECT_FALSE(Cost(run, "not_five", {"a"}).has_value());
  EXPECT_TRUE(Cost(run, "not_five", {"b"}).has_value());
}

TEST(EngineTest, RecursionThroughNegationRejected) {
  auto run = ParseAndRun(R"(
.decl e(x)
.decl p(x)
.decl q(x)
p(X) :- e(X), !q(X).
q(X) :- p(X).
e(a).
)");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kAnalysisError);
}

TEST(EngineTest, NonMonotonicAggregationRejectedButBypassable) {
  const char* text = R"(
.decl e(x, y)
.decl lim(x, k: count_nat)
.decl small(x)
.decl kc(x, y)
small(X) :- lim(X, K), N = count : kc(X, Y), N < K.
kc(X, Y) :- e(X, Y), small(Y).
lim(a, 5).
)";
  EXPECT_FALSE(ParseAndRun(text).ok());
  // validate=false lets experiments run rejected programs anyway.
  EXPECT_TRUE(ParseAndRun(text, {.validate = false}).ok());
}

TEST(EngineTest, ConflictingRulesCaughtStatically) {
  auto run = ParseAndRun(R"(
.decl q(x, d: min_real)
.decl r(x, d: min_real)
.decl p(x, c: min_real)
p(X, C) :- C =r min D : q(X, D).
p(X, C) :- C =r min D : r(X, D).
q(a, 1).
r(a, 2).
)");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kAnalysisError);
}

TEST(EngineTest, DynamicCostConsistencyDetection) {
  // Bypass the static check; the naive evaluator's per-application check
  // must catch the conflicting derivation (Definition 3.7).
  EvalOptions options;
  options.strategy = Strategy::kNaive;
  options.validate = false;
  options.check_cost_consistency = true;
  auto run = ParseAndRun(R"(
.decl q(x, d: min_real)
.decl r(x, d: min_real)
.decl p(x, c: min_real)
p(X, C) :- C =r min D : q(X, D).
p(X, C) :- C =r min D : r(X, D).
q(a, 1).
r(a, 2).
)",
                         options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCostConsistencyViolation);
}

TEST(EngineTest, MaxIterationsGuard) {
  // halfsum with exact arithmetic never reaches its fixpoint (Example 5.1).
  EvalOptions options;
  options.max_iterations = 10;
  ParsedRun run = MustRun(workloads::kHalfsumProgram, options);
  EXPECT_FALSE(run.result.stats.reached_fixpoint);
}

TEST(EngineTest, RuleWithConstantsOnlyFiresOnMatch) {
  ParsedRun run = MustRun(R"(
.decl e(x, y)
.decl hit(x)
hit(X) :- e(X, target).
e(a, target).
e(b, other).
)");
  EXPECT_TRUE(Cost(run, "hit", {"a"}).has_value());
  EXPECT_FALSE(Cost(run, "hit", {"b"}).has_value());
}

TEST(EngineTest, RepeatedVariablesInAtom) {
  ParsedRun run = MustRun(R"(
.decl e(x, y)
.decl loop(x)
loop(X) :- e(X, X).
e(a, a).
e(a, b).
)");
  EXPECT_TRUE(Cost(run, "loop", {"a"}).has_value());
  EXPECT_FALSE(Cost(run, "loop", {"b"}).has_value());
}

TEST(EngineTest, TransitiveClosurePlainDatalog) {
  ParsedRun run = MustRun(R"(
.decl e(x, y)
.decl tc(x, y)
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), e(Z, Y).
e(a, b). e(b, c). e(c, d).
)");
  EXPECT_TRUE(Cost(run, "tc", {"a", "d"}).has_value());
  EXPECT_FALSE(Cost(run, "tc", {"d", "a"}).has_value());
  const datalog::Relation* tc =
      run.result.db.Find(run.program->FindPredicate("tc"));
  EXPECT_EQ(tc->size(), 6u);
}

TEST(EngineTest, StatsArePopulated) {
  std::string text = std::string(workloads::kShortestPathProgram) +
                     "arc(a, b, 1).\narc(b, c, 2).\n";
  ParsedRun run = MustRun(text);
  EXPECT_GT(run.result.stats.iterations, 0);
  EXPECT_GT(run.result.stats.derivations, 0);
  EXPECT_GT(run.result.stats.merges_new, 0);
  EXPECT_TRUE(run.result.stats.reached_fixpoint);
  EXPECT_FALSE(run.result.stats.ToString().empty());
  EXPECT_FALSE(run.result.check.ToString().empty());
}

TEST(EngineTest, GreedyRequiresNumericComponent) {
  // Party's component has cost-free predicates: greedy must refuse.
  EvalOptions options;
  options.strategy = Strategy::kGreedy;
  std::string text =
      std::string(workloads::kPartyProgram) + "requires(solo, 0).\n";
  auto run = ParseAndRun(text, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, EmptyProgramRuns) {
  ParsedRun run = MustRun(".decl e(x)\ne(a).");
  EXPECT_EQ(run.result.db.TotalRows(), 1u);
}

TEST(EngineTest, EngineRunWithExternalEdb) {
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  datalog::Database edb;
  datalog::Fact f;
  f.pred = program->FindPredicate("arc");
  f.key = {Value::Symbol("x"), Value::Symbol("y")};
  f.cost = Value::Real(4);
  ASSERT_TRUE(edb.AddFact(f).ok());
  Engine engine(*program);
  auto result = engine.Run(std::move(edb));
  ASSERT_TRUE(result.ok()) << result.status();
  auto v = LookupCost(*program, result->db, "s",
                      {Value::Symbol("x"), Value::Symbol("y")});
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 4.0);
}

}  // namespace
}  // namespace core
}  // namespace mad
