// Runs every shipped examples/*.mdl program file end to end and pins the
// headline results, so the files users run stay correct.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/engine.h"

#ifndef MAD_SOURCE_DIR
#define MAD_SOURCE_DIR "."
#endif

namespace mad {
namespace {

using core::ParsedRun;
using datalog::Value;

ParsedRun RunFile(const std::string& name) {
  std::string path = std::string(MAD_SOURCE_DIR) + "/examples/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto run = core::ParseAndRun(buffer.str());
  EXPECT_TRUE(run.ok()) << run.status();
  return std::move(run).value();
}

std::optional<double> Cost(const ParsedRun& run, const char* pred,
                           std::vector<const char*> key) {
  datalog::Tuple t;
  for (const char* k : key) t.push_back(Value::Symbol(k));
  auto v = core::LookupCost(*run.program, run.result.db, pred, t);
  if (!v.has_value()) return std::nullopt;
  return v->AsDouble();
}

TEST(ExamplesTest, ShortestPathMdl) {
  ParsedRun run = RunFile("shortest_path.mdl");
  EXPECT_EQ(Cost(run, "s", {"a", "b"}), 1.0);
  EXPECT_EQ(Cost(run, "s", {"b", "b"}), 0.0);
  EXPECT_EQ(Cost(run, "s", {"a", "a"}), 11.0);  // a -> b -> a round trip
  EXPECT_EQ(Cost(run, "s", {"c", "b"}), 1.0);
}

TEST(ExamplesTest, CompanyControlMdl) {
  ParsedRun run = RunFile("company_control.mdl");
  EXPECT_TRUE(Cost(run, "c", {"b", "c"}).has_value());
  EXPECT_TRUE(Cost(run, "c", {"c", "b"}).has_value());
  EXPECT_FALSE(Cost(run, "c", {"a", "b"}).has_value());  // false, not undef
  EXPECT_FALSE(Cost(run, "c", {"a", "c"}).has_value());
}

TEST(ExamplesTest, CircuitMdl) {
  ParsedRun run = RunFile("circuit.mdl");
  EXPECT_EQ(Cost(run, "t", {"g1"}), 0.0);  // self-fed AND: minimal = false
  EXPECT_EQ(Cost(run, "t", {"g2"}), 1.0);  // OR latch locked in
  EXPECT_EQ(Cost(run, "t", {"g3"}), 1.0);
  EXPECT_EQ(Cost(run, "t", {"g4"}), 0.0);  // OR of w2=0 and g1=0
}

TEST(ExamplesTest, PartyMdl) {
  ParsedRun run = RunFile("party.mdl");
  for (const char* guest : {"ann", "bob", "cyd", "dan"}) {
    EXPECT_TRUE(Cost(run, "coming", {guest}).has_value()) << guest;
  }
  // eve needs 3 but only knows ann and bob.
  EXPECT_FALSE(Cost(run, "coming", {"eve"}).has_value());
}

TEST(ExamplesTest, LabelFlowMdl) {
  ParsedRun run = RunFile("label_flow.mdl");
  auto b = core::LookupCost(*run.program, run.result.db, "label",
                            {Value::Symbol("b")});
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->set_value().size(), 3u);  // {red, blue, green}
  auto d = core::LookupCost(*run.program, run.result.db, "label",
                            {Value::Symbol("d")});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->set_value().size(), 0u);  // isolated cycle stays at ∅
}

TEST(ExamplesTest, GradesMdl) {
  ParsedRun run = RunFile("grades.mdl");
  EXPECT_EQ(Cost(run, "all_avg", {}), 80.0);
  EXPECT_EQ(Cost(run, "flat_avg", {}), 78.0);  // math weighted higher
  EXPECT_EQ(Cost(run, "s_avg", {"john"}), 75.0);
  EXPECT_EQ(Cost(run, "class_count", {"math"}), 3.0);
  EXPECT_FALSE(Cost(run, "class_count", {"art"}).has_value());
  EXPECT_EQ(Cost(run, "alt_class_count", {"art"}), 0.0);
}

}  // namespace
}  // namespace mad
