// Direct unit tests of the runtime executor: built-in expression
// evaluation, comparison semantics across value kinds, negation over
// default and non-default predicates, aggregate edge cases.

#include <gtest/gtest.h>

#include "core/engine.h"

namespace mad {
namespace core {
namespace {

using datalog::Value;

ParsedRun MustRun(std::string_view text, EvalOptions options = {}) {
  auto run = ParseAndRun(text, options);
  EXPECT_TRUE(run.ok()) << run.status();
  return std::move(run).value();
}

bool Holds(const ParsedRun& run, const char* pred,
           std::vector<Value> key = {}) {
  return core::LookupCost(*run.program, run.result.db, pred, key)
      .has_value();
}

TEST(ExecutorBuiltinTest, IntegerArithmeticStaysIntegral) {
  ParsedRun run = MustRun(R"(
.decl v(x, c: max_real)
.decl out(x, c: max_real)
out(X, C) :- v(X, A), C = (A + 2) * 3 - 1.
v(a, 4).
)");
  auto c = LookupCost(*run.program, run.result.db, "out",
                      {Value::Symbol("a")});
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->AsDouble(), 17.0);
}

TEST(ExecutorBuiltinTest, DivisionIsRealAndDivByZeroFailsSubgoal) {
  ParsedRun run = MustRun(R"(
.decl v(x, c: max_real)
.decl half(x, c: max_real)
.decl bad(x, c: max_real)
half(X, C) :- v(X, A), C = A / 2.
bad(X, C) :- v(X, A), C = A / 0.
v(a, 5).
)");
  auto c = LookupCost(*run.program, run.result.db, "half",
                      {Value::Symbol("a")});
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->AsDouble(), 2.5);
  // Division by zero silently fails the ground instance, deriving nothing.
  EXPECT_FALSE(Holds(run, "bad", {Value::Symbol("a")}));
}

TEST(ExecutorBuiltinTest, Min2Max2PickTheExtremum) {
  ParsedRun run = MustRun(R"(
.decl v(x, c: max_real)
.decl clamped(x, c: max_real)
clamped(X, C) :- v(X, A), C = min2(max2(A, 0), 10).
v(a, -5).
v(b, 22).
v(c, 7).
)");
  EXPECT_DOUBLE_EQ(LookupCost(*run.program, run.result.db, "clamped",
                              {Value::Symbol("a")})
                       ->AsDouble(),
                   0.0);
  EXPECT_DOUBLE_EQ(LookupCost(*run.program, run.result.db, "clamped",
                              {Value::Symbol("b")})
                       ->AsDouble(),
                   10.0);
  EXPECT_DOUBLE_EQ(LookupCost(*run.program, run.result.db, "clamped",
                              {Value::Symbol("c")})
                       ->AsDouble(),
                   7.0);
}

TEST(ExecutorBuiltinTest, SymbolComparisonOnlyEquality) {
  ParsedRun run = MustRun(R"(
.decl e(x, y)
.decl same(x)
.decl diff(x)
same(X) :- e(X, Y), X = Y.
diff(X) :- e(X, Y), X != Y.
e(a, a).
e(b, c).
)");
  EXPECT_TRUE(Holds(run, "same", {Value::Symbol("a")}));
  EXPECT_FALSE(Holds(run, "same", {Value::Symbol("b")}));
  EXPECT_TRUE(Holds(run, "diff", {Value::Symbol("b")}));
  EXPECT_FALSE(Holds(run, "diff", {Value::Symbol("a")}));
}

TEST(ExecutorBuiltinTest, SymbolOrderingComparisonFails) {
  // '<' over symbols is not defined: the subgoal simply never holds.
  ParsedRun run = MustRun(R"(
.decl e(x, y)
.decl lt(x)
lt(X) :- e(X, Y), X < Y.
e(a, b).
)");
  EXPECT_FALSE(Holds(run, "lt", {Value::Symbol("a")}));
}

TEST(ExecutorBuiltinTest, CrossKindNumericComparison) {
  ParsedRun run = MustRun(R"(
.decl v(x, c: max_real)
.decl big(x)
big(X) :- v(X, C), C >= 3.
v(a, 3).
v(b, 2.5).
)");
  EXPECT_TRUE(Holds(run, "big", {Value::Symbol("a")}));
  EXPECT_FALSE(Holds(run, "big", {Value::Symbol("b")}));
}

TEST(ExecutorNegationTest, NonDefaultAbsentKeyNegationHolds) {
  ParsedRun run = MustRun(R"(
.decl v(x, c: max_real)
.decl item(x)
.decl missing(x)
missing(X) :- item(X), !v(X, 1).
item(a). item(b).
v(a, 1).
)");
  // v(b, ·) absent entirely: !v(b, 1) holds.
  EXPECT_TRUE(Holds(run, "missing", {Value::Symbol("b")}));
  EXPECT_FALSE(Holds(run, "missing", {Value::Symbol("a")}));
}

TEST(ExecutorNegationTest, DefaultPredicateNegationUsesBottom) {
  ParsedRun run = MustRun(R"(
.decl t(w, v: bool_or) default
.decl item(w)
.decl off(w)
off(W) :- item(W), !t(W, 1).
item(a). item(b).
t(a, 1).
)");
  // t(b) implicitly carries 0: !t(b, 1) holds; !t(a, 1) does not.
  EXPECT_TRUE(Holds(run, "off", {Value::Symbol("b")}));
  EXPECT_FALSE(Holds(run, "off", {Value::Symbol("a")}));
}

TEST(ExecutorAggregateTest, BoundResultActsAsFilter) {
  // The ground aggregate subgoal "1 =r count : ..." (cf. Section 3's
  // two-minimal-models example, here stratified): filters groups by their
  // aggregate value.
  ParsedRun run = MustRun(R"(
.decl e(g, x)
.decl singleton(g)
singleton(G) :- e(G, X), N =r count : e(G, Y), N = 1.
e(g1, a).
e(g2, a). e(g2, b).
)");
  EXPECT_TRUE(Holds(run, "singleton", {Value::Symbol("g1")}));
  EXPECT_FALSE(Holds(run, "singleton", {Value::Symbol("g2")}));
}

TEST(ExecutorAggregateTest, MultisetKeepsDuplicateValues) {
  // Two students with the same grade must both count toward the average —
  // SQL-style projection keeps duplicates (Definition 2.4).
  ParsedRun run = MustRun(R"(
.decl record(s, c, g: max_real)
.decl c_avg(c, g: max_real)
c_avg(C, G) :- G =r avg D : record(S, C, D).
record(ann, math, 60).
record(bob, math, 60).
record(cyd, math, 90).
)");
  auto g = LookupCost(*run.program, run.result.db, "c_avg",
                      {Value::Symbol("math")});
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g->AsDouble(), 70.0);
}

TEST(ExecutorAggregateTest, MultisetVarSharedAcrossConjunction) {
  // E occupying two cost arguments joins on equal values.
  ParsedRun run = MustRun(R"(
.decl p(x, c: max_real)
.decl q(x, c: max_real)
.decl agreed(n: count_nat)
agreed(N) :- N = count E : (p(X, E), q(X, E)).
p(a, 1). p(b, 2).
q(a, 1). q(b, 3).
)");
  auto n = LookupCost(*run.program, run.result.db, "agreed", {});
  ASSERT_TRUE(n.has_value());
  EXPECT_DOUBLE_EQ(n->AsDouble(), 1.0);  // only (a, 1) agrees
}

TEST(ExecutorAggregateTest, GroupModeEnumeratesOnlyNonEmptyGroups) {
  ParsedRun run = MustRun(R"(
.decl e(g, x)
.decl size(g, n: count_nat)
size(G, N) :- N =r count : e(G, X).
e(g1, a).
e(g1, b).
e(g2, c).
)");
  const auto* rel = run.result.db.Find(run.program->FindPredicate("size"));
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_DOUBLE_EQ(LookupCost(*run.program, run.result.db, "size",
                              {Value::Symbol("g1")})
                       ->AsDouble(),
                   2.0);
}

TEST(ExecutorTest, CartesianProductRule) {
  ParsedRun run = MustRun(R"(
.decl a(x)
.decl b(y)
.decl pair(x, y)
pair(X, Y) :- a(X), b(Y).
a(p). a(q).
b(u). b(v). b(w).
)");
  const auto* rel = run.result.db.Find(run.program->FindPredicate("pair"));
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 6u);
}

TEST(ExecutorTest, HeadCostOutsideDomainDropsDerivation) {
  // sum_real is non-negative; a subtraction pushing the head cost below 0
  // silently yields no ground instance rather than corrupting the lattice.
  EvalOptions options;
  options.validate = false;  // the rule is (deliberately) not admissible
  ParsedRun run = MustRun(R"(
.decl v(x, c: sum_real)
.decl out(x, c: sum_real)
out(X, C) :- v(X, A), C = A - 10.
v(a, 3).
v(b, 15).
)",
                          options);
  EXPECT_FALSE(Holds(run, "out", {Value::Symbol("a")}));
  auto c = LookupCost(*run.program, run.result.db, "out",
                      {Value::Symbol("b")});
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->AsDouble(), 5.0);
}

}  // namespace
}  // namespace core
}  // namespace mad
