// The generic fully-defined-before-aggregation evaluator (Section 5.3's
// competing semantics, for arbitrary negation-free programs): cross-checked
// against the shape-specific simulators and the paper's claims.

#include <gtest/gtest.h>

#include "baselines/fully_defined.h"
#include "baselines/kemp_stuckey.h"
#include "core/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace {

using baselines::Definedness;
using baselines::FullyDefinedEvaluator;
using baselines::Graph;
using core::ParsedRun;
using datalog::Value;

/// Runs the engine, then the fully-defined evaluator on the least model.
struct FdRun {
  std::unique_ptr<datalog::Program> program;
  core::EvalResult result;
  std::unique_ptr<FullyDefinedEvaluator> fd;
};

FdRun RunBoth(std::string_view text) {
  auto run = core::ParseAndRun(text);
  EXPECT_TRUE(run.ok()) << run.status();
  FdRun out{std::move(run->program), std::move(run->result), nullptr};
  out.fd = std::make_unique<FullyDefinedEvaluator>(*out.program, out.result.db);
  EXPECT_TRUE(out.fd->Evaluate().ok());
  return out;
}

Definedness StatusOf(const FdRun& run, const char* pred,
                     std::vector<const char*> key) {
  datalog::Tuple t;
  for (const char* k : key) t.push_back(Value::Symbol(k));
  return run.fd->StatusOf(run.program->FindPredicate(pred), t);
}

TEST(FullyDefinedTest, AcyclicShortestPathFullySettles) {
  FdRun run = RunBoth(std::string(workloads::kShortestPathProgram) +
                      "arc(a, b, 1).\narc(b, c, 2).\n");
  EXPECT_DOUBLE_EQ(run.fd->DefinedFraction(), 1.0);
  EXPECT_EQ(StatusOf(run, "s", {"a", "c"}), Definedness::kTrue);
  EXPECT_EQ(StatusOf(run, "s", {"c", "a"}), Definedness::kFalse);
}

TEST(FullyDefinedTest, Example31CycleIsUndefined) {
  // The paper's flagship contrast: on arc(a,b,1), arc(b,b,0) our least
  // model is two-valued (Example 3.1), while the fully-defined discipline
  // cannot resolve s(a,b)/s(b,b) — their aggregates range over paths whose
  // support loops through themselves.
  FdRun run = RunBoth(std::string(workloads::kShortestPathProgram) +
                      "arc(a, b, 1).\narc(b, b, 0).\n");
  EXPECT_EQ(StatusOf(run, "s", {"a", "b"}), Definedness::kUndefined);
  EXPECT_EQ(StatusOf(run, "s", {"b", "b"}), Definedness::kUndefined);
  EXPECT_LT(run.fd->DefinedFraction(), 1.0);
}

TEST(FullyDefinedTest, HalfsumNeverSettles) {
  // Section 5.6 / Example 5.1: the aggregate over p needs p itself fully
  // determined; p(b, 1) is a settled fact but p(a) never settles.
  FdRun run = RunBoth(std::string(workloads::kHalfsumProgram));
  EXPECT_EQ(StatusOf(run, "p", {"b"}), Definedness::kTrue);
  EXPECT_EQ(StatusOf(run, "p", {"a"}), Definedness::kUndefined);
}

TEST(FullyDefinedTest, CyclicCircuitGatesUndefined) {
  FdRun run = RunBoth(std::string(workloads::kCircuitProgram) + R"(
gate(g1, and).
connect(g1, g1).
gate(g2, or).
connect(g2, w1).
input(w1, 1).
)");
  // The self-fed AND never settles; the input-driven OR does.
  EXPECT_EQ(StatusOf(run, "t", {"g1"}), Definedness::kUndefined);
  EXPECT_EQ(StatusOf(run, "t", {"g2"}), Definedness::kTrue);
  EXPECT_EQ(StatusOf(run, "t", {"w1"}), Definedness::kTrue);
}

TEST(FullyDefinedTest, PartyBootstrapUndefinedOnMutualCycle) {
  FdRun run = RunBoth(std::string(workloads::kPartyProgram) + R"(
requires(ann, 0).
requires(bob, 1).
requires(cyd, 1).
knows(bob, cyd). knows(cyd, bob).
knows(bob, ann).
)");
  // ann needs nobody: settles. bob's count aggregates kc(bob, ·) whose
  // potential contributor kc(bob, cyd) hangs off the cyd<->bob cycle.
  EXPECT_EQ(StatusOf(run, "coming", {"ann"}), Definedness::kTrue);
  EXPECT_EQ(StatusOf(run, "coming", {"bob"}), Definedness::kUndefined);
  EXPECT_EQ(StatusOf(run, "coming", {"cyd"}), Definedness::kUndefined);
}

class FullyDefinedSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(FullyDefinedSeedTest, AgreesWithShapeSpecificSimulatorOnGraphs) {
  Random rng(GetParam());
  Graph g = workloads::RandomGraph(10, 25, {1.0, 6.0}, &rng);
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  datalog::Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  core::Engine engine(*program);
  auto result = engine.Run(std::move(edb));
  ASSERT_TRUE(result.ok());

  FullyDefinedEvaluator fd(*program, result->db);
  ASSERT_TRUE(fd.Evaluate().ok());
  auto wf = baselines::KempStuckeyShortestPaths(g);

  const datalog::PredicateInfo* s = program->FindPredicate("s");
  for (int x = 0; x < g.num_nodes; ++x) {
    for (int y = 0; y < g.num_nodes; ++y) {
      Definedness got = fd.StatusOf(
          s, {Value::Symbol(Graph::NodeName(x)),
              Value::Symbol(Graph::NodeName(y))});
      EXPECT_EQ(got, wf.status[x][y]) << "s(" << x << "," << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullyDefinedSeedTest, ::testing::Range(1, 7));

TEST(FullyDefinedTest, RejectsNegation) {
  auto run = core::ParseAndRun(R"(
.decl e(x)
.decl f(x)
.decl g(x)
g(X) :- e(X), !f(X).
e(a).
)");
  ASSERT_TRUE(run.ok());
  FullyDefinedEvaluator fd(*run->program, run->result.db);
  EXPECT_FALSE(fd.Evaluate().ok());
}

}  // namespace
}  // namespace mad
