// Deterministic fuzz smoke test for the parser and the front half of the
// engine: seeded random mutations of known-good program texts must never
// crash, assert, or hang — every input either parses (and then evaluates
// under tight resource limits) or comes back as a clean ParseError/
// AnalysisError/InvalidArgument. This pins the parser's no-abort discipline
// (ToCmpOp and friends return Status, never assert(false)) against the whole
// mutated-input space a seed can reach, reproducibly.

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datalog/parser.h"
#include "util/random.h"
#include "workloads/programs.h"

namespace mad {
namespace {

const char* kSeedTexts[] = {
    workloads::kShortestPathProgram, workloads::kCompanyControlProgram,
    workloads::kCompanyControlRMonotonic, workloads::kPartyProgram,
    workloads::kCircuitProgram, workloads::kHalfsumProgram,
    workloads::kLabelFlowProgram,
};

// Bytes that steer mutations toward grammar-relevant corners instead of
// pure noise: structural punctuation, operator fragments, quotes.
const char kInterestingBytes[] = {
    '.',  ',', '(', ')', ':', '-', '=', 'r', '!', '"', '%', '/',
    '\n', ' ', '0', '9', '<', '>', '+', '*', '{', '}', '\\', '\0',
};

std::string Mutate(const std::string& base, Random* rng) {
  std::string s = base;
  int edits = static_cast<int>(rng->Uniform(1, 8));
  for (int i = 0; i < edits && !s.empty(); ++i) {
    size_t pos = static_cast<size_t>(rng->Uniform(0, s.size() - 1));
    switch (rng->Uniform(0, 4)) {
      case 0:  // overwrite with an interesting byte
        s[pos] = kInterestingBytes[rng->Uniform(
            0, sizeof(kInterestingBytes) - 1)];
        break;
      case 1:  // delete a byte
        s.erase(pos, 1);
        break;
      case 2:  // insert an interesting byte
        s.insert(pos, 1,
                 kInterestingBytes[rng->Uniform(
                     0, sizeof(kInterestingBytes) - 1)]);
        break;
      case 3:  // truncate
        s.resize(pos);
        break;
      default: {  // splice a random window of another seed text
        const std::string other =
            kSeedTexts[rng->Uniform(0, std::size(kSeedTexts) - 1)];
        size_t from = static_cast<size_t>(rng->Uniform(0, other.size() - 1));
        size_t len = static_cast<size_t>(
            rng->Uniform(0, static_cast<int64_t>(other.size() - from)));
        s.insert(pos, other.substr(from, len));
        break;
      }
    }
  }
  return s;
}

/// Evaluation budget for inputs that happen to still parse: small enough
/// that even a mutated-into-divergence program (e.g. a weight flipped
/// negative on a cycle) returns promptly, with no wall-clock dependence so
/// the test stays deterministic.
core::EvalOptions TightBudget() {
  core::EvalOptions options;
  options.max_iterations = 50;
  options.limits.max_total_rounds = 50;
  options.limits.max_derived_tuples = 50'000;
  return options;
}

TEST(FuzzParserTest, MutatedProgramsNeverCrash) {
  Random rng(20260805);
  int parsed_ok = 0, parse_errors = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const std::string base = kSeedTexts[iter % std::size(kSeedTexts)];
    std::string text = Mutate(base, &rng);
    auto p = datalog::ParseProgram(text);
    if (!p.ok()) {
      ++parse_errors;
      EXPECT_FALSE(p.status().message().empty()) << "in:\n" << text;
      continue;
    }
    ++parsed_ok;
    // Survivors go through analysis + a resource-capped evaluation. Any
    // Status is acceptable; crashing or diverging is not.
    auto run = core::ParseAndRun(text, TightBudget());
    if (!run.ok()) {
      EXPECT_FALSE(run.status().message().empty()) << "in:\n" << text;
    }
  }
  // The mutator must actually exercise both sides of the parser.
  EXPECT_GT(parsed_ok, 0);
  EXPECT_GT(parse_errors, 0);
}

TEST(FuzzParserTest, MutatedFactBlocksNeverCrash) {
  Random rng(97);
  const std::string facts_base =
      "arc(a, b, 1).\narc(b, c, 2.5).\narc(c, a, \"sym\").\narc(a, a, 0).\n";
  for (int iter = 0; iter < 300; ++iter) {
    std::string text =
        std::string(workloads::kShortestPathProgram) + Mutate(facts_base, &rng);
    auto run = core::ParseAndRun(text, TightBudget());
    if (!run.ok()) {
      EXPECT_FALSE(run.status().message().empty()) << "in:\n" << text;
    }
  }
}

TEST(FuzzParserTest, GarbagePrefixesAndTinyInputs) {
  // Exhaustive single- and double-byte inputs over the interesting set plus
  // a few regression-ish stubs: the lexer's edge cases live here.
  for (char a : kInterestingBytes) {
    std::string one(1, a);
    (void)datalog::ParseProgram(one);
    for (char b : kInterestingBytes) {
      std::string two{a, b};
      (void)datalog::ParseProgram(two);
    }
  }
  for (const char* stub :
       {"\"", ".decl", ".decl p(", "p(a", "p(a) :-", "p(a) :- q(",
        "p() :- =r", ".constraint", "% only a comment", "//", ".decl p(x)\np(\"",
        ".decl p(x, c: min_real)\np(a, -", ".decl p()\np() :- p(), "}) {
    auto p = datalog::ParseProgram(stub);
    if (!p.ok()) EXPECT_FALSE(p.status().message().empty()) << stub;
  }
  SUCCEED();
}

}  // namespace
}  // namespace mad
