// Experiment E5.1: the halfsum program — T_P monotonic but not continuous;
// the least fixpoint p(a, 1) is approached but never reached in finitely
// many steps (Section 6.2 / Example 5.1).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/programs.h"

namespace mad {
namespace {

using core::EvalOptions;
using core::ParseAndRun;
using core::ParsedRun;
using datalog::Value;

double PofA(const ParsedRun& run) {
  auto v = core::LookupCost(*run.program, run.result.db, "p",
                            {Value::Symbol("a")});
  EXPECT_TRUE(v.has_value());
  return v->AsDouble();
}

TEST(HalfsumTest, ApproximationsIncreaseStrictlyTowardOne) {
  double previous = -1;
  for (int64_t budget : {2, 5, 10, 20, 40}) {
    EvalOptions options;
    options.max_iterations = budget;
    auto run = ParseAndRun(workloads::kHalfsumProgram, options);
    ASSERT_TRUE(run.ok()) << run.status();
    double v = PofA(*run);
    EXPECT_LT(v, 1.0);       // never reaches the fixpoint
    EXPECT_GT(v, previous);  // but climbs monotonically
    EXPECT_FALSE(run->result.stats.reached_fixpoint);
    previous = v;
  }
  EXPECT_GT(previous, 0.999);  // 40 iterations come very close
}

TEST(HalfsumTest, IterationKComputesOneMinusTwoToMinusK) {
  // p(a) after k productive iterations is 1 - 2^-k: iteration 1 sees the
  // multiset {p(b)=1} -> 1/2; iteration 2 sees {1/2, 1} -> 3/4; and so on.
  EvalOptions options;
  options.max_iterations = 6;
  auto run = ParseAndRun(workloads::kHalfsumProgram, options);
  ASSERT_TRUE(run.ok());
  // Round 1 derives 1/2; rounds 2..6 refine: value = 1 - 2^-5 after the 6th
  // T_P application has been *scheduled* but the 6th merge not yet applied?
  // No — each iteration merges: after k iterations value = 1 - 2^-(k-? ).
  // We assert the exact dyadic form rather than a magic constant:
  double v = PofA(*run);
  double log2gap = std::log2(1.0 - v);
  EXPECT_NEAR(log2gap, std::round(log2gap), 1e-9);
}

TEST(HalfsumTest, EpsilonConvergenceTerminates) {
  EvalOptions options;
  options.epsilon = 1e-9;
  options.max_iterations = 1000;
  auto run = ParseAndRun(workloads::kHalfsumProgram, options);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->result.stats.reached_fixpoint);
  EXPECT_NEAR(PofA(*run), 1.0, 1e-6);
  // Convergence must be fast: gap halves per round.
  EXPECT_LT(run->result.stats.iterations, 64);
}

TEST(HalfsumTest, PofBIsExactlyOne) {
  EvalOptions options;
  options.epsilon = 1e-9;
  auto run = ParseAndRun(workloads::kHalfsumProgram, options);
  ASSERT_TRUE(run.ok());
  auto v = core::LookupCost(*run->program, run->result.db, "p",
                            {Value::Symbol("b")});
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 1.0);
}

TEST(HalfsumTest, NaiveStrategyShowsSameLimitBehaviour) {
  EvalOptions options;
  options.strategy = core::Strategy::kNaive;
  options.epsilon = 1e-9;
  options.max_iterations = 1000;
  auto run = ParseAndRun(workloads::kHalfsumProgram, options);
  ASSERT_TRUE(run.ok());
  EXPECT_NEAR(PofA(*run), 1.0, 1e-6);
}

TEST(HalfsumTest, TwoSeedsConvergeToSumOfSeeds) {
  // p(a, C) :- C =r halfsum D : p(X, D) with seeds 1 and 3: the fixpoint
  // satisfies v = (v + 4) / 2, i.e. v = 4.
  EvalOptions options;
  options.epsilon = 1e-10;
  options.max_iterations = 1000;
  auto run = ParseAndRun(std::string(workloads::kHalfsumProgram) +
                             "p(d, 3).\n",
                         options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_NEAR(PofA(*run), 4.0, 1e-6);
}

}  // namespace
}  // namespace mad
