// Incremental view maintenance (Engine::Update): monotone inserts continue
// the fixpoint from the delta; the result must equal a full recomputation,
// at a fraction of the work.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace core {
namespace {

using baselines::Graph;
using datalog::Database;
using datalog::Fact;
using datalog::Program;
using datalog::Value;

Fact ArcFact(const Program& program, int u, int v, double w) {
  Fact f;
  f.pred = program.FindPredicate("arc");
  f.key = {Value::Symbol(Graph::NodeName(u)),
           Value::Symbol(Graph::NodeName(v))};
  f.cost = Value::Real(w);
  return f;
}

TEST(IncrementalTest, SingleArcInsertMatchesFullRecompute) {
  Random rng(2);
  Graph g = workloads::RandomGraph(20, 50, {1.0, 9.0}, &rng);
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  Engine engine(*program);

  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  auto incremental = engine.Run(edb.Clone());
  ASSERT_TRUE(incremental.ok());

  // Insert a shortcut edge incrementally...
  Fact shortcut = ArcFact(*program, 0, 19, 0.5);
  auto ustats = engine.Update(&incremental.value(), {shortcut});
  ASSERT_TRUE(ustats.ok()) << ustats.status();

  // ...and compare against recomputing from scratch.
  Graph g2 = g;
  g2.AddEdge(0, 19, 0.5);
  Database edb2;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g2, &edb2).ok());
  auto full = engine.Run(std::move(edb2));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(incremental->db.ToString(), full->db.ToString());
}

class IncrementalSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalSeedTest, ArcByArcEqualsBatch) {
  // Build the whole graph one Update at a time; the final model must equal
  // the one-shot evaluation.
  Random rng(GetParam());
  Graph g = workloads::RandomGraph(12, 35, {1.0, 9.0}, &rng);
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  Engine engine(*program);

  auto trickled = engine.Run(Database());
  ASSERT_TRUE(trickled.ok());
  for (int u = 0; u < g.num_nodes; ++u) {
    for (const Graph::Edge& e : g.adj[u]) {
      auto st =
          engine.Update(&trickled.value(), {ArcFact(*program, u, e.to,
                                                    e.weight)});
      ASSERT_TRUE(st.ok()) << st.status();
    }
  }

  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  auto batch = engine.Run(std::move(edb));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(trickled->db.ToString(), batch->db.ToString());
}

TEST_P(IncrementalSeedTest, CompanyControlShareInserts) {
  Random rng(50 + GetParam());
  auto net = workloads::RandomOwnership(12, 3, 0.4, &rng);
  auto program = datalog::ParseProgram(workloads::kCompanyControlProgram);
  ASSERT_TRUE(program.ok());
  Engine engine(*program);

  // Start with the network minus the control chain, then add it back
  // incrementally — the added shares trigger recursive control cascades.
  auto partial = net;
  std::vector<Fact> chain;
  for (int y = 0; y + 1 < 12; ++y) {
    if (partial.shares[y][y + 1] == 0.6) {
      partial.shares[y][y + 1] = 0.0;
      Fact f;
      f.pred = program->FindPredicate("s");
      f.key = {
          Value::Symbol(baselines::OwnershipNetwork::CompanyName(y)),
          Value::Symbol(baselines::OwnershipNetwork::CompanyName(y + 1))};
      f.cost = Value::Real(0.6);
      chain.push_back(std::move(f));
    }
  }
  Database edb;
  ASSERT_TRUE(workloads::AddOwnershipFacts(*program, partial, &edb).ok());
  auto incremental = engine.Run(std::move(edb));
  ASSERT_TRUE(incremental.ok());
  auto st = engine.Update(&incremental.value(), chain);
  ASSERT_TRUE(st.ok()) << st.status();

  Database full_edb;
  ASSERT_TRUE(workloads::AddOwnershipFacts(*program, net, &full_edb).ok());
  auto full = engine.Run(std::move(full_edb));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(incremental->db.ToString(), full->db.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSeedTest, ::testing::Range(1, 6));

class IncrementalThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalThreadsTest, TrickledUpdatesMatchBatchUnderParallelism) {
  // Same contract as ArcByArcEqualsBatch, but the engine runs its fixpoints
  // with a worker pool: updates must land on the identical least model at
  // every thread count (the serving layer leans on this — its writer calls
  // Update on a parallel engine while snapshots are being read).
  EvalOptions options;
  options.num_threads = GetParam();
  Random rng(11);
  Graph g = workloads::RandomGraph(14, 40, {1.0, 9.0}, &rng);
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  Engine engine(*program, options);

  auto trickled = engine.Run(Database());
  ASSERT_TRUE(trickled.ok());
  for (int u = 0; u < g.num_nodes; ++u) {
    for (const Graph::Edge& e : g.adj[u]) {
      auto st = engine.Update(&trickled.value(),
                              {ArcFact(*program, u, e.to, e.weight)});
      ASSERT_TRUE(st.ok()) << st.status();
    }
  }

  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  Engine serial(*program);
  auto batch = serial.Run(std::move(edb));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(trickled->db.ToString(), batch->db.ToString())
      << "num_threads=" << GetParam();
}

TEST_P(IncrementalThreadsTest, BulkUpdateMatchesBatchUnderParallelism) {
  // One big insert batch (the serving layer's common case) instead of
  // arc-by-arc trickling.
  EvalOptions options;
  options.num_threads = GetParam();
  Random rng(12);
  Graph g = workloads::RandomGraph(20, 70, {1.0, 9.0}, &rng);
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  Engine engine(*program, options);

  std::vector<Fact> all_arcs;
  for (int u = 0; u < g.num_nodes; ++u) {
    for (const Graph::Edge& e : g.adj[u]) {
      all_arcs.push_back(ArcFact(*program, u, e.to, e.weight));
    }
  }
  auto result = engine.Run(Database());
  ASSERT_TRUE(result.ok());
  auto st = engine.Update(&result.value(), all_arcs);
  ASSERT_TRUE(st.ok()) << st.status();

  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  Engine serial(*program);
  auto batch = serial.Run(std::move(edb));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(result->db.ToString(), batch->db.ToString())
      << "num_threads=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Threads, IncrementalThreadsTest,
                         ::testing::Values(2, 8));

TEST(IncrementalTest, UpdateDoesFarLessWorkThanRecompute) {
  Random rng(9);
  Graph g = workloads::RandomGraph(40, 160, {1.0, 9.0}, &rng);
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  Engine engine(*program);
  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  auto result = engine.Run(std::move(edb));
  ASSERT_TRUE(result.ok());
  int64_t full_derivations = result->stats.derivations;

  // A heavy-cost edge far from everything changes little.
  auto ustats =
      engine.Update(&result.value(), {ArcFact(*program, 3, 7, 500.0)});
  ASSERT_TRUE(ustats.ok());
  EXPECT_LT(ustats->derivations, full_derivations / 5)
      << "update: " << ustats->ToString()
      << "\nfull: " << result->stats.ToString();
}

TEST(IncrementalTest, LateGuestTipsTheParty) {
  // Everyone needs one committed friend and knows the next person around a
  // cycle: nobody comes. Adding one zero-threshold guest known by p0 tips
  // the whole cycle, one person per round.
  auto program = datalog::ParseProgram(workloads::kPartyProgram);
  ASSERT_TRUE(program.ok());
  Engine engine(*program);

  baselines::PartyInstance p;
  p.num_people = 6;
  p.threshold.assign(6, 1);
  p.knows.assign(6, {});
  for (int i = 0; i < 6; ++i) p.knows[i].push_back((i + 1) % 6);
  Database edb;
  ASSERT_TRUE(workloads::AddPartyFacts(*program, p, &edb).ok());
  auto result = engine.Run(std::move(edb));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->db.Find(program->FindPredicate("coming")), nullptr);

  // The late guest: requires(joy, 0) plus knows(p0, joy).
  Fact joy_req;
  joy_req.pred = program->FindPredicate("requires");
  joy_req.key = {Value::Symbol("joy")};
  joy_req.cost = Value::Real(0);
  Fact knows_joy;
  knows_joy.pred = program->FindPredicate("knows");
  knows_joy.key = {Value::Symbol("p0"), Value::Symbol("joy")};
  auto st = engine.Update(&result.value(), {joy_req, knows_joy});
  ASSERT_TRUE(st.ok()) << st.status();
  const auto* coming = result->db.Find(program->FindPredicate("coming"));
  ASSERT_NE(coming, nullptr);
  EXPECT_EQ(coming->size(), 7u);  // joy + the whole cycle
}

TEST(IncrementalTest, RejectsPseudoMonotonicAggregates) {
  // A new connect fact can *lower* an AND gate (it gains a 0 input):
  // insert-only maintenance is unsound for the circuit program.
  auto program = datalog::ParseProgram(workloads::kCircuitProgram);
  ASSERT_TRUE(program.ok());
  Engine engine(*program);
  auto result = engine.Run(Database());
  ASSERT_TRUE(result.ok());
  Fact f;
  f.pred = program->FindPredicate("input");
  f.key = {Value::Symbol("w1")};
  f.cost = Value::Real(1);
  auto st = engine.Update(&result.value(), {f});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.status().message().find("not fully monotonic"),
            std::string::npos);
}

TEST(IncrementalTest, RejectsNegation) {
  auto program = datalog::ParseProgram(R"(
.decl e(x)
.decl f(x)
.decl g(x)
g(X) :- e(X), !f(X).
)");
  ASSERT_TRUE(program.ok());
  Engine engine(*program);
  auto result = engine.Run(Database());
  ASSERT_TRUE(result.ok());
  Fact f;
  f.pred = program->FindPredicate("e");
  f.key = {Value::Symbol("a")};
  auto st = engine.Update(&result.value(), {f});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalTest, IdempotentReinsertion) {
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  Engine engine(*program);
  auto result = engine.Run(Database());
  ASSERT_TRUE(result.ok());
  Fact f = ArcFact(*program, 0, 1, 2.0);
  ASSERT_TRUE(engine.Update(&result.value(), {f}).ok());
  std::string before = result->db.ToString();
  auto again = engine.Update(&result.value(), {f});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(result->db.ToString(), before);
  EXPECT_EQ(again->derivations, 0);
}

}  // namespace
}  // namespace core
}  // namespace mad
