// A deliberately tiny recursive-descent JSON reader, used only by tests to
// lock the shape of madlint's --format=json / --format=sarif output. The
// project has no JSON dependency, and the renderers hand-emit their output;
// this is the independent decoder that keeps them honest.
#ifndef MAD_TESTS_JSON_LITE_H_
#define MAD_TESTS_JSON_LITE_H_

#include <cctype>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mad {
namespace testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  bool Has(const std::string& key) const {
    return is_object() && obj.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue missing;
    auto it = obj.find(key);
    return it == obj.end() ? missing : it->second;
  }
};

class JsonLiteParser {
 public:
  explicit JsonLiteParser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    std::optional<JsonValue> v = ParseValue();
    SkipSpace();
    if (!v.has_value() || pos_ != text_.size()) return std::nullopt;
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    SkipSpace();
    size_t n = std::string(w).size();
    if (text_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (ConsumeWord("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (ConsumeWord("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (ConsumeWord("null")) return JsonValue{};
    return ParseNumber();
  }

  std::optional<JsonValue> ParseObject() {
    if (!Consume('{')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return v;
    while (true) {
      std::optional<JsonValue> key = ParseString();
      if (!key.has_value() || !Consume(':')) return std::nullopt;
      std::optional<JsonValue> val = ParseValue();
      if (!val.has_value()) return std::nullopt;
      v.obj.emplace(key->str, std::move(*val));
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseArray() {
    if (!Consume('[')) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return v;
    while (true) {
      std::optional<JsonValue> val = ParseValue();
      if (!val.has_value()) return std::nullopt;
      v.arr.push_back(std::move(*val));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return std::nullopt;
    }
  }

  std::optional<JsonValue> ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        v.str += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          v.str += esc;
          break;
        case 'n':
          v.str += '\n';
          break;
        case 'r':
          v.str += '\r';
          break;
        case 't':
          v.str += '\t';
          break;
        case 'b':
          v.str += '\b';
          break;
        case 'f':
          v.str += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
          pos_ += 4;
          // Tests only emit control characters this way; keep it one byte.
          v.str += static_cast<char>(code);
          break;
        }
        default:
          return std::nullopt;
      }
    }
    if (pos_ >= text_.size()) return std::nullopt;
    ++pos_;  // closing quote
    return v;
  }

  std::optional<JsonValue> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline std::optional<JsonValue> ParseJson(const std::string& text) {
  return JsonLiteParser(text).Parse();
}

}  // namespace testing
}  // namespace mad

#endif  // MAD_TESTS_JSON_LITE_H_
