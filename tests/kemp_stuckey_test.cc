// Experiment S5: the Section 5.3 comparison — a semantics that may only
// aggregate fully-determined relations is two-valued exactly on acyclic
// (modularly stratified) inputs and goes undefined on cycles, while the
// paper's least model is always two-valued.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/kemp_stuckey.h"
#include "baselines/shortest_path.h"
#include "core/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace {

using baselines::Definedness;
using baselines::Graph;
using baselines::KempStuckeyShortestPaths;
using baselines::kUnreachable;

TEST(KempStuckeyTest, FullyDefinedOnDags) {
  Random rng(1);
  Graph g = workloads::LayeredDag(6, 4, 2, {1.0, 5.0}, &rng);
  auto wf = KempStuckeyShortestPaths(g);
  EXPECT_DOUBLE_EQ(wf.DefinedFraction(), 1.0);
  EXPECT_EQ(wf.CountUndefined(), 0);
  // And the defined distances agree with Dijkstra's non-empty paths.
  auto want = baselines::AllPairsNonEmptyDijkstra(g);
  for (int x = 0; x < g.num_nodes; ++x) {
    for (int y = 0; y < g.num_nodes; ++y) {
      if (wf.status[x][y] == Definedness::kTrue) {
        EXPECT_NEAR(wf.dist[x][y], want[x][y], 1e-9);
      } else {
        EXPECT_TRUE(std::isinf(want[x][y]));
      }
    }
  }
}

TEST(KempStuckeyTest, SelfLoopMakesDependentsUndefined) {
  // Example 3.1's graph: a -> b (1), b -> b (0). s(a,b) aggregates over
  // path(a,b,b) which needs s(a,b) itself: undefined under Kemp-Stuckey,
  // while our least model makes it true with cost 1.
  Graph g;
  g.Resize(2);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 1, 0);
  auto wf = KempStuckeyShortestPaths(g);
  EXPECT_EQ(wf.status[0][1], Definedness::kUndefined);
  EXPECT_EQ(wf.status[1][1], Definedness::kUndefined);
  EXPECT_GT(wf.CountUndefined(), 0);
}

TEST(KempStuckeyTest, UnreachablePairsAreFalse) {
  Graph g;
  g.Resize(3);
  g.AddEdge(0, 1, 1);
  auto wf = KempStuckeyShortestPaths(g);
  EXPECT_EQ(wf.status[1][0], Definedness::kFalse);
  EXPECT_EQ(wf.status[2][0], Definedness::kFalse);
  EXPECT_EQ(wf.status[0][1], Definedness::kTrue);
  EXPECT_DOUBLE_EQ(wf.dist[0][1], 1.0);
}

TEST(KempStuckeyTest, DefinednessDegradesWithCycleDensity) {
  Random rng(12);
  Graph dag = workloads::LayeredDag(5, 5, 2, {1.0, 5.0}, &rng);
  Graph cyclic = workloads::CycleGraph(25, 20, {1.0, 5.0}, &rng);
  auto wf_dag = KempStuckeyShortestPaths(dag);
  auto wf_cyc = KempStuckeyShortestPaths(cyclic);
  EXPECT_DOUBLE_EQ(wf_dag.DefinedFraction(), 1.0);
  // Every pair on the big cycle depends on the cycle: nothing is defined.
  EXPECT_LT(wf_cyc.DefinedFraction(), 0.1);
}

class KempStuckeySeedTest : public ::testing::TestWithParam<int> {};

TEST_P(KempStuckeySeedTest, AgreesWithLeastModelWhereDefined) {
  // Proposition 6.1: our minimal model extends the (two-valued part of the)
  // well-founded-style model — wherever that semantics is defined, the
  // values must coincide with the engine's least model.
  Random rng(GetParam());
  Graph g = workloads::RandomGraph(18, 40, {1.0, 6.0}, &rng);
  auto wf = KempStuckeyShortestPaths(g);

  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  datalog::Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  core::Engine engine(*program);
  auto result = engine.Run(std::move(edb));
  ASSERT_TRUE(result.ok()) << result.status();

  for (int x = 0; x < g.num_nodes; ++x) {
    for (int y = 0; y < g.num_nodes; ++y) {
      auto v = core::LookupCost(
          *program, result->db, "s",
          {datalog::Value::Symbol(Graph::NodeName(x)),
           datalog::Value::Symbol(Graph::NodeName(y))});
      switch (wf.status[x][y]) {
        case Definedness::kTrue:
          ASSERT_TRUE(v.has_value()) << x << "," << y;
          EXPECT_NEAR(v->AsDouble(), wf.dist[x][y], 1e-9);
          break;
        case Definedness::kFalse:
          EXPECT_FALSE(v.has_value()) << x << "," << y;
          break;
        case Definedness::kUndefined:
          // Our semantics resolves these; nothing to cross-check beyond the
          // engine's own Dijkstra test. The *least model is two-valued*.
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KempStuckeySeedTest, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// The same discipline on company control (Section 5.6's point)
// ---------------------------------------------------------------------------

TEST(KempStuckeyCompanyControlTest, VanGelderNetworkUndefined) {
  // {s(a,b,.3), s(a,c,.3), s(b,c,.6), s(c,b,.6)}: a's control of b needs
  // a's control of c determined first and vice versa — exactly the pair the
  // paper says Van Gelder's treatment leaves undefined ("For us, c(a,b) and
  // c(a,c) are false, while for Van Gelder they would both be undefined").
  // b and c, holding majorities outright, resolve to true either way.
  baselines::OwnershipNetwork net;
  net.Resize(3);  // 0=a, 1=b, 2=c
  net.shares[0][1] = 0.3;
  net.shares[0][2] = 0.3;
  net.shares[1][2] = 0.6;
  net.shares[2][1] = 0.6;
  auto wf = baselines::KempStuckeyCompanyControl(net);
  EXPECT_EQ(wf.status[0][1], baselines::Definedness::kUndefined);
  EXPECT_EQ(wf.status[0][2], baselines::Definedness::kUndefined);
  EXPECT_EQ(wf.status[1][2], baselines::Definedness::kTrue);
  EXPECT_EQ(wf.status[2][1], baselines::Definedness::kTrue);
  EXPECT_TRUE(wf.controls[1][2]);
  EXPECT_TRUE(wf.controls[2][1]);
  EXPECT_EQ(wf.CountUndefined(), 2);
}

TEST(KempStuckeyCompanyControlTest, AcyclicOwnershipFullyDefined) {
  // A pure downstream chain has no ownership cycles: everything resolves
  // and matches the direct solver.
  baselines::OwnershipNetwork net;
  net.Resize(5);
  for (int i = 0; i + 1 < 5; ++i) net.shares[i][i + 1] = 0.6;
  auto wf = baselines::KempStuckeyCompanyControl(net);
  EXPECT_DOUBLE_EQ(wf.DefinedFraction(), 1.0);
  auto direct = baselines::SolveCompanyControl(net);
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      EXPECT_EQ(wf.controls[x][y], direct.controls[x][y]) << x << "," << y;
    }
  }
}

TEST(KempStuckeyCompanyControlTest, AgreesWithDirectSolverWhereDefined) {
  Random rng(21);
  auto net = workloads::RandomOwnership(15, 3, 0.4, &rng);
  auto wf = baselines::KempStuckeyCompanyControl(net);
  auto direct = baselines::SolveCompanyControl(net);
  for (int x = 0; x < 15; ++x) {
    for (int y = 0; y < 15; ++y) {
      if (wf.status[x][y] == baselines::Definedness::kUndefined) continue;
      EXPECT_EQ(wf.controls[x][y], direct.controls[x][y]) << x << "," << y;
    }
  }
}

}  // namespace
}  // namespace mad
