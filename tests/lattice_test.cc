#include <gtest/gtest.h>

#include <cmath>

#include "lattice/cost_domain.h"
#include "util/random.h"

namespace mad {
namespace lattice {
namespace {

using datalog::Value;

TEST(NumericDomainTest, MinRealIsTheDualOrder) {
  const CostDomain* d = MinRealDomain();
  // ⊑ is ≥: "minimal models have larger cost values" (Example 3.1).
  EXPECT_TRUE(d->LessEq(Value::Real(5), Value::Real(3)));
  EXPECT_FALSE(d->LessEq(Value::Real(3), Value::Real(5)));
  EXPECT_TRUE(std::isinf(d->Bottom().AsDouble()));
  EXPECT_GT(d->Bottom().AsDouble(), 0);  // bottom is +inf
  EXPECT_LT(d->Top().AsDouble(), 0);     // top is -inf
  EXPECT_DOUBLE_EQ(d->Join(Value::Real(5), Value::Real(3)).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(d->Meet(Value::Real(5), Value::Real(3)).AsDouble(), 5.0);
}

TEST(NumericDomainTest, MaxRealIsTheUsualOrder) {
  const CostDomain* d = MaxRealDomain();
  EXPECT_TRUE(d->LessEq(Value::Real(3), Value::Real(5)));
  EXPECT_LT(d->Bottom().AsDouble(), 0);  // -inf
  EXPECT_DOUBLE_EQ(d->Join(Value::Real(5), Value::Real(3)).AsDouble(), 5.0);
}

TEST(NumericDomainTest, SumDomainBottomIsZero) {
  const CostDomain* d = SumNonNegDomain();
  EXPECT_DOUBLE_EQ(d->Bottom().AsDouble(), 0.0);
  EXPECT_TRUE(std::isinf(d->Top().AsDouble()));
  EXPECT_FALSE(d->Contains(Value::Real(-1)));
  EXPECT_TRUE(d->Contains(Value::Real(0.5)));
}

TEST(NumericDomainTest, BooleanDomains) {
  const CostDomain* bor = BoolOrDomain();
  EXPECT_DOUBLE_EQ(bor->Bottom().AsDouble(), 0.0);
  EXPECT_TRUE(bor->LessEq(Value::Real(0), Value::Real(1)));
  EXPECT_TRUE(bor->HasFiniteAscendingChains());

  const CostDomain* band = BoolAndDomain();
  EXPECT_DOUBLE_EQ(band->Bottom().AsDouble(), 1.0);  // ⊑ is ≥, bottom is 1
  EXPECT_TRUE(band->LessEq(Value::Real(1), Value::Real(0)));
  EXPECT_FALSE(band->Contains(Value::Real(0.5)));  // integral domain
}

TEST(NumericDomainTest, CountAndProductBottoms) {
  EXPECT_DOUBLE_EQ(CountNatDomain()->Bottom().AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(ProductPosDomain()->Bottom().AsDouble(), 1.0);
  EXPECT_FALSE(ProductPosDomain()->Contains(Value::Real(0)));
  EXPECT_FALSE(CountNatDomain()->Contains(Value::Real(2.5)));
  EXPECT_TRUE(CountNatDomain()->Contains(Value::Real(
      std::numeric_limits<double>::infinity())));
}

TEST(NumericDomainTest, NormalizeMakesIntsAndDoublesEqual) {
  const CostDomain* d = MaxRealDomain();
  EXPECT_EQ(d->Normalize(Value::Int(3)), d->Normalize(Value::Real(3.0)));
  EXPECT_TRUE(d->Equal(Value::Int(3), Value::Real(3.0)));
}

TEST(SetDomainTest, UnionLattice) {
  const CostDomain* d = SetUnionDomain();
  Value a = Value::Set({Value::Int(1)});
  Value b = Value::Set({Value::Int(2)});
  Value ab = Value::Set({Value::Int(1), Value::Int(2)});
  EXPECT_TRUE(d->LessEq(a, ab));
  EXPECT_FALSE(d->LessEq(ab, a));
  EXPECT_FALSE(d->LessEq(a, b));  // incomparable: genuinely partial
  EXPECT_FALSE(d->IsTotalOrder());
  EXPECT_EQ(d->Join(a, b), ab);
  EXPECT_EQ(d->Meet(a, ab), a);
  EXPECT_EQ(d->Bottom().set_value().size(), 0u);
}

TEST(SetDomainTest, IntersectionLatticeIsDual) {
  auto d = MakeSetIntersectionDomain(
      "isect_test", {Value::Int(1), Value::Int(2), Value::Int(3)});
  Value a = Value::Set({Value::Int(1), Value::Int(2)});
  Value b = Value::Set({Value::Int(2), Value::Int(3)});
  // ⊑ is ⊇: smaller sets are higher.
  EXPECT_TRUE(d->LessEq(a, Value::Set({Value::Int(1)})));
  EXPECT_EQ(d->Bottom().set_value().size(), 3u);  // bottom = universe
  EXPECT_EQ(d->Join(a, b), Value::Set({Value::Int(2)}));  // join = ∩
  EXPECT_EQ(d->Meet(a, b).set_value().size(), 3u);        // meet = ∪
}

TEST(DomainRegistryTest, AllFigure1DomainsRegistered) {
  for (const char* name :
       {"max_real", "max_nonneg", "min_real", "sum_real", "bool_and",
        "bool_or", "product_pos", "count_nat", "set_union"}) {
    EXPECT_NE(DomainRegistry::Global().Find(name), nullptr) << name;
  }
  EXPECT_EQ(DomainRegistry::Global().Find("no_such_domain"), nullptr);
}

TEST(CostDomainTest, JoinAllOfEmptyIsBottom) {
  for (const char* name : {"min_real", "max_real", "sum_real", "bool_or"}) {
    const CostDomain* d = DomainRegistry::Global().Find(name);
    EXPECT_TRUE(d->Equal(d->JoinAll({}), d->Bottom())) << name;
  }
}

// ---------------------------------------------------------------------------
// Lattice laws, property-checked across every registered numeric domain.
// ---------------------------------------------------------------------------

class LatticeLawTest : public ::testing::TestWithParam<const char*> {
 protected:
  const CostDomain* domain() const {
    return DomainRegistry::Global().Find(GetParam());
  }
  /// Random member of the domain (numeric domains only).
  Value Sample(Random* rng) const {
    const auto* num = dynamic_cast<const NumericDomain*>(domain());
    double lo = std::isfinite(num->lo()) ? num->lo() : -100.0;
    double hi = std::isfinite(num->hi()) ? num->hi() : 100.0;
    double v = rng->UniformReal(lo, hi);
    if (num->integral()) v = std::floor(v);
    return Value::Real(v);
  }
};

TEST_P(LatticeLawTest, JoinMeetLaws) {
  Random rng(42);
  const CostDomain* d = domain();
  for (int trial = 0; trial < 200; ++trial) {
    Value a = Sample(&rng), b = Sample(&rng), c = Sample(&rng);
    // Idempotence.
    EXPECT_TRUE(d->Equal(d->Join(a, a), d->Normalize(a)));
    EXPECT_TRUE(d->Equal(d->Meet(a, a), d->Normalize(a)));
    // Commutativity.
    EXPECT_TRUE(d->Equal(d->Join(a, b), d->Join(b, a)));
    EXPECT_TRUE(d->Equal(d->Meet(a, b), d->Meet(b, a)));
    // Associativity.
    EXPECT_TRUE(d->Equal(d->Join(d->Join(a, b), c), d->Join(a, d->Join(b, c))));
    EXPECT_TRUE(d->Equal(d->Meet(d->Meet(a, b), c), d->Meet(a, d->Meet(b, c))));
    // Absorption.
    EXPECT_TRUE(d->Equal(d->Join(a, d->Meet(a, b)), d->Normalize(a)));
    EXPECT_TRUE(d->Equal(d->Meet(a, d->Join(a, b)), d->Normalize(a)));
    // Order consistency: a ⊑ b iff join(a, b) = b.
    EXPECT_EQ(d->LessEq(a, b), d->Equal(d->Join(a, b), d->Normalize(b)));
    // Bottom and top.
    EXPECT_TRUE(d->LessEq(d->Bottom(), a));
    EXPECT_TRUE(d->LessEq(a, d->Top()));
  }
}

TEST_P(LatticeLawTest, PartialOrderLaws) {
  Random rng(77);
  const CostDomain* d = domain();
  for (int trial = 0; trial < 200; ++trial) {
    Value a = Sample(&rng), b = Sample(&rng), c = Sample(&rng);
    EXPECT_TRUE(d->LessEq(a, a));  // reflexive
    if (d->LessEq(a, b) && d->LessEq(b, a)) {
      EXPECT_TRUE(d->Equal(a, b));  // antisymmetric
    }
    if (d->LessEq(a, b) && d->LessEq(b, c)) {
      EXPECT_TRUE(d->LessEq(a, c));  // transitive
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllNumericDomains, LatticeLawTest,
                         ::testing::Values("max_real", "max_nonneg",
                                           "min_real", "sum_real", "bool_and",
                                           "bool_or", "product_pos",
                                           "count_nat"));

TEST(SetLatticeLawTest, RandomSubsetLaws) {
  Random rng(5);
  const CostDomain* d = SetUnionDomain();
  auto sample = [&]() {
    datalog::ValueSet elems;
    for (int i = 0; i < 8; ++i) {
      if (rng.Bernoulli(0.4)) elems.push_back(Value::Int(i));
    }
    return Value::Set(std::move(elems));
  };
  for (int trial = 0; trial < 200; ++trial) {
    Value a = sample(), b = sample(), c = sample();
    EXPECT_EQ(d->Join(a, d->Meet(a, b)), a);
    EXPECT_EQ(d->Meet(a, d->Join(a, b)), a);
    EXPECT_EQ(d->Join(d->Join(a, b), c), d->Join(a, d->Join(b, c)));
    EXPECT_EQ(d->LessEq(a, b), d->Equal(d->Join(a, b), b));
  }
}

}  // namespace
}  // namespace lattice
}  // namespace mad
