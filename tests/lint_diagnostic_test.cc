// The diagnostic data model and its three renderers: rule registry, text
// formatting, and the JSON / SARIF schemas locked by an independent decoder.

#include <gtest/gtest.h>

#include <set>

#include "analysis/lint/diagnostic.h"
#include "json_lite.h"

namespace mad {
namespace analysis {
namespace lint {
namespace {

using mad::testing::JsonValue;
using mad::testing::ParseJson;

Diagnostic MakeDiag(const char* rule, Severity sev, const char* msg,
                    const char* file, int line, int col, int end_col) {
  Diagnostic d;
  d.rule_id = rule;
  d.severity = sev;
  d.message = msg;
  d.file = file;
  d.span = {line, col, line, end_col};
  return d;
}

DiagnosticList SampleList() {
  DiagnosticList list;
  list.Add(MakeDiag("MAD009-singleton-variable", Severity::kWarning,
                    "variable Y occurs only once in this rule", "a.mdl", 7, 6,
                    7));
  list.Add(MakeDiag("MAD001-range-restriction", Severity::kError,
                    "head variable Y is not limited", "a.mdl", 7, 6, 7));
  list.Add(MakeDiag("MAD010-dead-predicate", Severity::kNote,
                    "predicate unused/1 is declared but never used in any "
                    "rule, fact, or constraint",
                    "a.mdl", 0, 0, 0));
  list.Sort();
  return list;
}

// --- Registry ---------------------------------------------------------------

TEST(LintRegistryTest, TwentySevenRulesWithUniqueStableIds) {
  const auto& rules = AllLintRules();
  EXPECT_EQ(rules.size(), 27u);
  std::set<std::string> codes, ids;
  for (const LintRuleDesc& r : rules) {
    codes.insert(r.code);
    ids.insert(r.FullId());
    EXPECT_NE(r.summary[0], '\0');
    EXPECT_NE(r.paper_ref[0], '\0');
  }
  EXPECT_EQ(codes.size(), rules.size());
  EXPECT_EQ(ids.size(), rules.size());
  EXPECT_EQ(rules.front().FullId(), "MAD001-range-restriction");
}

TEST(LintRegistryTest, FindByCodeAndByFullId) {
  EXPECT_NE(FindLintRule("MAD003"), nullptr);
  EXPECT_NE(FindLintRule("MAD003-conflict-free"), nullptr);
  EXPECT_EQ(FindLintRule("MAD003"), FindLintRule("MAD003-conflict-free"));
  EXPECT_EQ(FindLintRule("MAD999"), nullptr);
  EXPECT_EQ(FindLintRule(""), nullptr);
}

TEST(LintRegistryTest, PaperChecksDefaultToErrorHygieneDoesNot) {
  EXPECT_EQ(FindLintRule("MAD001")->default_severity, Severity::kError);
  EXPECT_EQ(FindLintRule("MAD002")->default_severity, Severity::kError);
  EXPECT_EQ(FindLintRule("MAD003")->default_severity, Severity::kError);
  for (const char* code :
       {"MAD007", "MAD009", "MAD011", "MAD012", "MAD013", "MAD014"}) {
    EXPECT_EQ(FindLintRule(code)->default_severity, Severity::kWarning)
        << code;
  }
  EXPECT_EQ(FindLintRule("MAD008")->default_severity, Severity::kNote);
  EXPECT_EQ(FindLintRule("MAD010")->default_severity, Severity::kNote);
}

// --- Text rendering ---------------------------------------------------------

TEST(DiagnosticTest, ToStringCarriesFileSpanSeverityAndRuleId) {
  Diagnostic d = MakeDiag("MAD001-range-restriction", Severity::kError,
                          "head variable Y is not limited", "a.mdl", 7, 6, 7);
  EXPECT_EQ(d.ToString(),
            "a.mdl:7:6-7: error: head variable Y is not limited "
            "[MAD001-range-restriction]");
}

TEST(DiagnosticTest, ToStringOmitsUnknownSpanAndNamesAnonymousInput) {
  Diagnostic d = MakeDiag("MAD010-dead-predicate", Severity::kNote,
                          "predicate unused/1 is never used", "", 0, 0, 0);
  EXPECT_EQ(d.ToString(),
            "<input>: note: predicate unused/1 is never used "
            "[MAD010-dead-predicate]");
}

TEST(DiagnosticTest, ToStringRendersFixits) {
  Diagnostic d = MakeDiag("MAD009-singleton-variable", Severity::kWarning,
                          "variable Y occurs only once in this rule", "a.mdl",
                          7, 6, 7);
  d.fixits.push_back({{7, 6, 7, 7}, "_Y", "prefix with '_'"});
  std::string s = d.ToString();
  EXPECT_NE(s.find("fix at 7:6-7: prefix with '_' -> `_Y`"),
            std::string::npos);
}

TEST(DiagnosticListTest, SortOrdersBySpanWithUnlocatedLast) {
  DiagnosticList list = SampleList();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list.diagnostics()[0].rule_id, "MAD001-range-restriction");
  EXPECT_EQ(list.diagnostics()[1].rule_id, "MAD009-singleton-variable");
  EXPECT_EQ(list.diagnostics()[2].rule_id, "MAD010-dead-predicate");
}

TEST(DiagnosticListTest, RenderTextEndsWithSummaryLine) {
  std::string text = SampleList().RenderText();
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 1 note(s)\n"),
            std::string::npos);
  EXPECT_EQ(DiagnosticList().RenderText(), "");
}

TEST(DiagnosticListTest, SeverityCounting) {
  DiagnosticList list = SampleList();
  EXPECT_EQ(list.CountSeverity(Severity::kError), 1);
  EXPECT_EQ(list.CountSeverity(Severity::kWarning), 1);
  EXPECT_EQ(list.CountSeverity(Severity::kNote), 1);
  EXPECT_TRUE(list.HasErrors());
  EXPECT_FALSE(DiagnosticList().HasErrors());
}

// --- JSON escaping ----------------------------------------------------------

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

// --- JSON schema ------------------------------------------------------------

TEST(RenderJsonTest, ParsesBackAndRoundTripsEveryField) {
  DiagnosticList list = SampleList();
  std::optional<JsonValue> doc = ParseJson(list.RenderJson());
  ASSERT_TRUE(doc.has_value()) << list.RenderJson();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->At("version").number, 1);

  const JsonValue& diags = doc->At("diagnostics");
  ASSERT_TRUE(diags.is_array());
  ASSERT_EQ(diags.arr.size(), list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    const Diagnostic& d = list.diagnostics()[i];
    const JsonValue& j = diags.arr[i];
    EXPECT_EQ(j.At("ruleId").str, d.rule_id);
    EXPECT_EQ(j.At("severity").str, SeverityName(d.severity));
    EXPECT_EQ(j.At("message").str, d.message);
    EXPECT_EQ(j.At("file").str, d.file);
    EXPECT_EQ(j.At("span").At("line").number, d.span.line);
    EXPECT_EQ(j.At("span").At("col").number, d.span.col);
    EXPECT_EQ(j.At("span").At("endLine").number, d.span.end_line);
    EXPECT_EQ(j.At("span").At("endCol").number, d.span.end_col);
  }

  const JsonValue& summary = doc->At("summary");
  EXPECT_EQ(summary.At("errors").number, 1);
  EXPECT_EQ(summary.At("warnings").number, 1);
  EXPECT_EQ(summary.At("notes").number, 1);
}

TEST(RenderJsonTest, FixitsSurviveTheRoundTrip) {
  DiagnosticList list;
  Diagnostic d = MakeDiag("MAD009-singleton-variable", Severity::kWarning,
                          "variable \"Y\"\nonly once", "dir/a.mdl", 3, 2, 3);
  d.fixits.push_back({{3, 2, 3, 3}, "_Y", "prefix with '_'"});
  list.Add(std::move(d));
  std::optional<JsonValue> doc = ParseJson(list.RenderJson());
  ASSERT_TRUE(doc.has_value());
  const JsonValue& j = doc->At("diagnostics").arr.at(0);
  // The escaped quote and newline decode back to the original message.
  EXPECT_EQ(j.At("message").str, "variable \"Y\"\nonly once");
  const JsonValue& fix = j.At("fixits").arr.at(0);
  EXPECT_EQ(fix.At("replacement").str, "_Y");
  EXPECT_EQ(fix.At("description").str, "prefix with '_'");
  EXPECT_EQ(fix.At("span").At("line").number, 3);
}

// --- SARIF schema -----------------------------------------------------------

TEST(RenderSarifTest, MinimalSarif210Shape) {
  DiagnosticList list = SampleList();
  std::optional<JsonValue> doc = ParseJson(list.RenderSarif());
  ASSERT_TRUE(doc.has_value()) << list.RenderSarif();
  EXPECT_EQ(doc->At("version").str, "2.1.0");
  EXPECT_NE(doc->At("$schema").str.find("sarif"), std::string::npos);

  ASSERT_EQ(doc->At("runs").arr.size(), 1u);
  const JsonValue& run = doc->At("runs").arr[0];
  const JsonValue& driver = run.At("tool").At("driver");
  EXPECT_EQ(driver.At("name").str, "madlint");

  // The full registry ships as tool.driver.rules, in registry order.
  const JsonValue& rules = driver.At("rules");
  ASSERT_EQ(rules.arr.size(), AllLintRules().size());
  for (size_t i = 0; i < rules.arr.size(); ++i) {
    EXPECT_EQ(rules.arr[i].At("id").str, AllLintRules()[i].FullId());
    EXPECT_TRUE(rules.arr[i].Has("shortDescription"));
    EXPECT_TRUE(rules.arr[i].At("defaultConfiguration").Has("level"));
  }

  const JsonValue& results = run.At("results");
  ASSERT_EQ(results.arr.size(), list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    const Diagnostic& d = list.diagnostics()[i];
    const JsonValue& r = results.arr[i];
    EXPECT_EQ(r.At("ruleId").str, d.rule_id);
    EXPECT_EQ(r.At("level").str, SeverityName(d.severity));
    EXPECT_EQ(r.At("message").At("text").str, d.message);
    // ruleIndex points back into the rules table.
    int idx = static_cast<int>(r.At("ruleIndex").number);
    ASSERT_GE(idx, 0);
    EXPECT_EQ(AllLintRules()[idx].FullId(), d.rule_id);
    const JsonValue& loc = r.At("locations").arr.at(0).At("physicalLocation");
    EXPECT_EQ(loc.At("artifactLocation").At("uri").str, "a.mdl");
    if (d.span.valid()) {
      EXPECT_EQ(loc.At("region").At("startLine").number, d.span.line);
      EXPECT_EQ(loc.At("region").At("startColumn").number, d.span.col);
      EXPECT_EQ(loc.At("region").At("endColumn").number, d.span.end_col);
    } else {
      EXPECT_FALSE(loc.Has("region"));
    }
  }
}

TEST(RenderSarifTest, FixitsBecomeSarifFixes) {
  DiagnosticList list;
  Diagnostic d = MakeDiag("MAD009-singleton-variable", Severity::kWarning,
                          "variable Y occurs only once in this rule", "a.mdl",
                          7, 6, 7);
  d.fixits.push_back({{7, 6, 7, 7}, "_Y", "prefix with '_'"});
  list.Add(std::move(d));
  std::optional<JsonValue> doc = ParseJson(list.RenderSarif());
  ASSERT_TRUE(doc.has_value());
  const JsonValue& fix =
      doc->At("runs").arr.at(0).At("results").arr.at(0).At("fixes").arr.at(0);
  EXPECT_EQ(fix.At("description").At("text").str, "prefix with '_'");
  const JsonValue& repl =
      fix.At("artifactChanges").arr.at(0).At("replacements").arr.at(0);
  EXPECT_EQ(repl.At("insertedContent").At("text").str, "_Y");
  EXPECT_EQ(repl.At("deletedRegion").At("startColumn").number, 6);
}

TEST(RenderSarifTest, EmptyListStillValidSarif) {
  std::optional<JsonValue> doc = ParseJson(DiagnosticList().RenderSarif());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->At("runs").arr.at(0).At("results").arr.empty());
}

}  // namespace
}  // namespace lint
}  // namespace analysis
}  // namespace mad
