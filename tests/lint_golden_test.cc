// Golden-file tests: each tests/lint_testdata/<name>.mdl is linted with the
// full pass manager and the findings — rendered as "rule-id span severity",
// one per line — must match <name>.expected exactly. The goldens double as
// the documentation of where each rule anchors its span.

#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>

#include "analysis/checker.h"
#include "analysis/lint/passes.h"
#include "datalog/parser.h"
#include "json_lite.h"

namespace mad {
namespace analysis {
namespace lint {
namespace {

std::string TestdataDir() {
  return std::string(MAD_SOURCE_DIR) + "/tests/lint_testdata/";
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> NonCommentLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(line);
  }
  return lines;
}

class LintGoldenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LintGoldenTest, FindingsMatchGoldenFile) {
  const std::string base = GetParam();
  const std::string mdl_path = TestdataDir() + base + ".mdl";
  const std::string expected_path = TestdataDir() + base + ".expected";

  auto program = datalog::ParseProgram(ReadFileOrDie(mdl_path));
  ASSERT_TRUE(program.ok()) << base << ": " << program.status();
  DependencyGraph graph(*program);
  LintContext ctx;
  ctx.program = &*program;
  ctx.graph = &graph;
  ctx.file = mdl_path;
  DiagnosticList diags = MakeDefaultPassManager().Run(ctx);

  std::vector<std::string> got;
  for (const Diagnostic& d : diags.diagnostics()) {
    got.push_back(d.rule_id + " " + d.span.ToString() + " " +
                  SeverityName(d.severity));
  }
  std::vector<std::string> want = NonCommentLines(ReadFileOrDie(expected_path));
  EXPECT_EQ(got, want) << base << ":\n" << diags.RenderText();

  // The golden programs also exercise the accept/reject equivalence: the
  // checker rejects exactly the files whose goldens contain an error.
  ProgramCheckResult check = CheckProgram(*program, graph, mdl_path);
  EXPECT_EQ(check.overall().ok(), !diags.HasErrors())
      << base << ": " << check.overall();

  // And the SARIF rendering of every golden must decode to a well-formed
  // SARIF 2.1.0 log whose results point back into the registry's rule table.
  std::optional<mad::testing::JsonValue> sarif =
      mad::testing::ParseJson(diags.RenderSarif());
  ASSERT_TRUE(sarif.has_value()) << base << ": " << diags.RenderSarif();
  EXPECT_EQ(sarif->At("version").str, "2.1.0");
  const mad::testing::JsonValue& run = sarif->At("runs").arr.at(0);
  const auto& results = run.At("results").arr;
  ASSERT_EQ(results.size(), diags.size()) << base;
  const auto& rules = run.At("tool").At("driver").At("rules").arr;
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].At("ruleId").str, diags.diagnostics()[i].rule_id);
    int idx = static_cast<int>(results[i].At("ruleIndex").number);
    ASSERT_GE(idx, 0) << base;
    ASSERT_LT(idx, static_cast<int>(rules.size())) << base;
    EXPECT_EQ(rules[idx].At("id").str, diags.diagnostics()[i].rule_id);
  }
}

// The static typing/planning rules must be registered with warning/note
// severity only: an error-severity finding is emitted iff the checker's
// overall() verdict rejects, and none of MAD019-MAD024 affects acceptance.
TEST(LintRegistryTest, StaticPlanningRulesAreRegisteredNonError) {
  const struct {
    const char* code;
    Severity severity;
  } kWant[] = {
      {"MAD019", Severity::kWarning}, {"MAD020", Severity::kWarning},
      {"MAD021", Severity::kWarning}, {"MAD022", Severity::kWarning},
      {"MAD023", Severity::kNote},    {"MAD024", Severity::kWarning},
      {"MAD025", Severity::kWarning}, {"MAD026", Severity::kNote},
      {"MAD027", Severity::kWarning},
  };
  for (const auto& w : kWant) {
    const LintRuleDesc* desc = FindLintRule(w.code);
    ASSERT_NE(desc, nullptr) << w.code;
    EXPECT_EQ(desc->default_severity, w.severity) << w.code;
    EXPECT_NE(desc->default_severity, Severity::kError) << w.code;
  }
}

INSTANTIATE_TEST_SUITE_P(AllGoldens, LintGoldenTest,
                         ::testing::Values("ok", "bad_range", "bad_cost",
                                           "bad_conflict", "bad_recursion",
                                           "hygiene", "bad_types", "planning",
                                           "demand", "bad_demand"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace lint
}  // namespace analysis
}  // namespace mad
