// The lint pass manager: every pass in isolation, the "all findings in one
// run" guarantee, and the equivalence between error-severity findings and
// the evaluator's accept/reject decision.

#include <gtest/gtest.h>

#include <set>

#include "analysis/checker.h"
#include "analysis/demand/demand.h"
#include "analysis/lint/passes.h"
#include "datalog/parser.h"
#include "workloads/programs.h"

namespace mad {
namespace analysis {
namespace lint {
namespace {

using datalog::ParseProgram;
using datalog::Program;

struct Linted {
  Program program;
  std::unique_ptr<DependencyGraph> graph;
  DiagnosticList diags;
};

Linted Lint(std::string_view text, bool paper_only = false) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  Linted out{std::move(p).value(), nullptr, {}};
  out.graph = std::make_unique<DependencyGraph>(out.program);
  LintContext ctx;
  ctx.program = &out.program;
  ctx.graph = out.graph.get();
  ctx.file = "test.mdl";
  out.diags = (paper_only ? MakePaperPassManager() : MakeDefaultPassManager())
                  .Run(ctx);
  return out;
}

int CountRule(const DiagnosticList& list, const std::string& code) {
  int n = 0;
  for (const Diagnostic& d : list.diagnostics()) {
    if (d.rule_id.rfind(code, 0) == 0) ++n;
  }
  return n;
}

const Diagnostic* FindRule(const DiagnosticList& list,
                           const std::string& code) {
  for (const Diagnostic& d : list.diagnostics()) {
    if (d.rule_id.rfind(code, 0) == 0) return &d;
  }
  return nullptr;
}

// --- One run reports everything ---------------------------------------------

TEST(PassManagerTest, ThreeSeededViolationsAllReportedInOneRun) {
  // Seeded: one negated-CDB subgoal (MAD006) and two unlimited variables
  // (MAD001). The legacy Check* API stops at the first; the pass manager
  // must surface all three errors in a single invocation.
  Linted l = Lint(R"(
.decl e(x, y)
.decl p(x)
.decl q(x)
e(a, b).
p(X) :- e(X, X), !q(X).
q(X) :- p(X).
p(Y) :- e(X, X).
q(C) :- e(C, C), !e(C, Z).
)");
  std::vector<const Diagnostic*> errors;
  for (const Diagnostic& d : l.diags.diagnostics()) {
    if (d.severity == Severity::kError) errors.push_back(&d);
  }
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(CountRule(l.diags, "MAD006"), 1);
  EXPECT_EQ(CountRule(l.diags, "MAD001"), 2);
  for (const Diagnostic* d : errors) {
    EXPECT_TRUE(d->span.valid()) << d->ToString();
    EXPECT_EQ(d->file, "test.mdl");
  }
}

TEST(PassManagerTest, CleanProgramHasNoFindings) {
  Linted l = Lint(R"(
.decl e(x, y)
.decl tc(x, y)
e(a, b).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), e(Z, Y).
)");
  EXPECT_TRUE(l.diags.empty()) << l.diags.RenderText();
}

// --- Individual passes ------------------------------------------------------

TEST(SingletonVariableTest, FlagsSingleUseNamedVariables) {
  Linted l = Lint(R"(
.decl e(x, y)
.decl p(x)
e(a, b).
p(X) :- e(X, Dangling).
)");
  const Diagnostic* d = FindRule(l.diags, "MAD009");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_NE(d->message.find("Dangling"), std::string::npos);
  ASSERT_EQ(d->fixits.size(), 1u);
  EXPECT_EQ(d->fixits[0].replacement, "_Dangling");
}

TEST(SingletonVariableTest, UnderscorePrefixSuppresses) {
  Linted l = Lint(R"(
.decl e(x, y)
.decl p(x)
e(a, b).
p(X) :- e(X, _Ignored).
p(X) :- e(X, _).
)");
  EXPECT_EQ(CountRule(l.diags, "MAD009"), 0) << l.diags.RenderText();
}

TEST(SingletonVariableTest, AggregateLocalVariablesAreExempt) {
  // C is local to the aggregate (ranges over record's second column); that
  // is the idiomatic projection, not a typo.
  Linted l = Lint(R"(
.decl record(s, c, g: max_real)
.decl s_avg(s, g: max_real)
record(s1, c1, 3).
s_avg(S, G) :- G =r avg D : record(S, C, D).
)");
  EXPECT_EQ(CountRule(l.diags, "MAD009"), 0) << l.diags.RenderText();
}

TEST(DeadPredicateTest, FlagsDeclaredButUnusedPredicates) {
  Linted l = Lint(R"(
.decl e(x, y)
.decl orphan(x, y)
.decl tc(x, y)
e(a, b).
tc(X, Y) :- e(X, Y).
)");
  const Diagnostic* d = FindRule(l.diags, "MAD010");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_NE(d->message.find("orphan/2"), std::string::npos);
  EXPECT_FALSE(d->span.valid());  // declarations carry no span
}

TEST(UnreachableRuleTest, FlagsEmptyPredicateInBody) {
  Linted l = Lint(R"(
.decl e(x)
.decl ghost(x)
.decl p(x)
e(a).
p(X) :- e(X), ghost(X).
)");
  const Diagnostic* d = FindRule(l.diags, "MAD011");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("ghost"), std::string::npos);
  EXPECT_TRUE(d->span.valid());
}

TEST(UnreachableRuleTest, DefaultValuePredicatesAreNeverEmpty) {
  Linted l = Lint(R"(
.decl e(x)
.decl d(x, c: bool_or) default
.decl p(x)
e(a).
p(X) :- e(X), d(X, C), C = true.
)");
  EXPECT_EQ(CountRule(l.diags, "MAD011"), 0) << l.diags.RenderText();
}

TEST(DuplicateRuleTest, FlagsAlphaEquivalentRules) {
  Linted l = Lint(R"(
.decl e(x, y)
.decl p(x, y)
e(a, b).
p(X, Y) :- e(X, Y).
p(A, B) :- e(A, B).
)");
  const Diagnostic* d = FindRule(l.diags, "MAD012");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("line 5"), std::string::npos);
}

TEST(DuplicateRuleTest, DistinctBindingPatternsAreNotDuplicates) {
  Linted l = Lint(R"(
.decl e(x, y)
.decl p(x, y)
e(a, b).
p(X, Y) :- e(X, Y).
p(X, Y) :- e(Y, X).
)");
  EXPECT_EQ(CountRule(l.diags, "MAD012"), 0) << l.diags.RenderText();
}

TEST(CartesianProductTest, FlagsDisconnectedJoinGroups) {
  Linted l = Lint(R"(
.decl e(x, y)
.decl cart(x, y)
e(a, b).
cart(X, Y) :- e(X, _A), e(Y, _B).
)");
  const Diagnostic* d = FindRule(l.diags, "MAD013");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("cartesian"), std::string::npos);
}

TEST(CartesianProductTest, BuiltinsConnectJoinGroups) {
  Linted l = Lint(R"(
.decl e(x, y)
.decl cart(x, y)
e(a, b).
cart(X, Y) :- e(X, A), e(Y, B), A = B.
)");
  EXPECT_EQ(CountRule(l.diags, "MAD013"), 0) << l.diags.RenderText();
}

TEST(CostDomainMismatchTest, FlagsOneVariableInTwoLattices) {
  Linted l = Lint(R"(
.decl m1(x, c: min_real)
.decl m2(x, c: max_real)
.decl mix(x, y)
m1(a, 1).
m2(a, 2).
mix(X, Y) :- m1(X, C), m2(Y, C).
)");
  const Diagnostic* d = FindRule(l.diags, "MAD014");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("min_real"), std::string::npos);
  EXPECT_NE(d->message.find("max_real"), std::string::npos);
}

TEST(CostDomainMismatchTest, SameLatticeIsFine) {
  Linted l = Lint(R"(
.decl m1(x, c: min_real)
.decl m3(x, c: min_real)
.decl mix(x, y)
m1(a, 1).
m3(a, 2).
mix(X, Y) :- m1(X, C), m3(Y, C).
)");
  EXPECT_EQ(CountRule(l.diags, "MAD014"), 0) << l.diags.RenderText();
}

TEST(AdmissibilityPassTest, PseudoMonotonicWithoutDefaultIsError) {
  Linted l = Lint(R"(
.decl gate(g, t)
.decl connect(g, w)
.decl t(w, v: bool_or)
gate(g1, and).
connect(g1, w1).
t(G, C) :- gate(G, and), C = and D : (connect(G, W), t(W, D)).
)");
  const Diagnostic* d = FindRule(l.diags, "MAD005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_TRUE(d->span.valid());
}

TEST(AdmissibilityPassTest, CircuitWithDefaultHasNoMad005) {
  Linted l = Lint(workloads::kCircuitProgram);
  EXPECT_EQ(CountRule(l.diags, "MAD005"), 0) << l.diags.RenderText();
}

TEST(AdmissibilityPassTest, NegatedCdbSubgoalIsError) {
  Linted l = Lint(R"(
.decl e(x)
.decl p(x)
.decl q(x)
e(a).
p(X) :- e(X), !q(X).
q(X) :- p(X).
)");
  const Diagnostic* d = FindRule(l.diags, "MAD006");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kError);
  EXPECT_TRUE(d->span.valid());
}

TEST(AdmissibilityPassTest, WarningOnlyOutsideAggregateOrNegationRecursion) {
  // Constant CDB cost violates Definition 4.2(2), but the component recurses
  // positively only, so the evaluator still accepts the program: the finding
  // must be a warning, matching overall().
  Linted l = Lint(R"(
.decl e(x)
.decl p(x, c: min_real)
e(a).
p(X, 3) :- e(X), p(X, 3).
)");
  const Diagnostic* d = FindRule(l.diags, "MAD004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
  EXPECT_FALSE(l.diags.HasErrors()) << l.diags.RenderText();
}

TEST(TerminationPassTest, InfiniteChainLatticeGetsWarning) {
  Linted l = Lint(workloads::kShortestPathProgram);
  const Diagnostic* d = FindRule(l.diags, "MAD007");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kWarning);
}

TEST(PrefixSoundnessPassTest, PseudoMonotonicAggregateGetsNote) {
  Linted l = Lint(workloads::kCircuitProgram);
  const Diagnostic* d = FindRule(l.diags, "MAD008");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, Severity::kNote);
  EXPECT_TRUE(d->span.valid());
}

TEST(PrefixSoundnessPassTest, StrictlyMonotonicAggregateHasNoNote) {
  Linted l = Lint(workloads::kShortestPathProgram);
  EXPECT_EQ(CountRule(l.diags, "MAD008"), 0) << l.diags.RenderText();
}

// --- Breadth: many distinct rule IDs, each with a usable location -----------

TEST(PassManagerTest, AtLeastTenDistinctRuleIdsWithSpans) {
  const char* programs[] = {
      // MAD001 + MAD002 + MAD009
      R"(
.decl e(x, y)
.decl sp(x, c: min_real)
e(a, b).
sp(X, C) :- e(X, Y), e(Y, Z).
)",
      // MAD003
      R"(
.decl e(x, c: min_real)
.decl p(x, c: min_real)
e(a, 1).
p(X, C) :- e(X, C).
p(X, D) :- e(X, C), D = C + 1.
)",
      // MAD004 (warning form)
      R"(
.decl e(x)
.decl p(x, c: min_real)
e(a).
p(X, 3) :- e(X), p(X, 3).
)",
      // MAD005 + MAD006
      R"(
.decl e(x)
.decl p(x)
.decl q(x)
.decl gate(g, t)
.decl connect(g, w)
.decl t(w, v: bool_or)
e(a).
gate(g1, and).
connect(g1, w1).
p(X) :- e(X), !q(X).
q(X) :- p(X).
t(G, C) :- gate(G, and), C = and D : (connect(G, W), t(W, D)).
)",
      // MAD007
      workloads::kShortestPathProgram,
      // MAD008
      workloads::kCircuitProgram,
      // MAD010 + MAD011 + MAD012 + MAD013 + MAD014
      R"(
.decl e(x, y)
.decl unused(x)
.decl ghost(x)
.decl p(x, y)
.decl q(x)
.decl cart(x, y)
.decl m1(x, c: min_real)
.decl m2(x, c: max_real)
.decl mix(x, y)
e(a, b).
m1(a, 1).
m2(a, 2).
p(X, Y) :- e(X, Y).
p(A, B) :- e(A, B).
q(X) :- e(X, _Y), ghost(X).
cart(X, Y) :- e(X, _A), e(Y, _B).
mix(X, Y) :- m1(X, C), m2(Y, C).
)",
  };
  std::set<std::string> ids;
  for (const char* text : programs) {
    Linted l = Lint(text);
    for (const Diagnostic& d : l.diags.diagnostics()) {
      ids.insert(d.rule_id);
      // Every finding except the span-less declaration note locates itself.
      if (d.rule_id.rfind("MAD010", 0) != 0) {
        EXPECT_TRUE(d.span.valid()) << d.ToString();
      }
    }
  }
  EXPECT_GE(ids.size(), 10u) << "distinct rule IDs seen: " << ids.size();
}

// --- Magic predicates under the emptiness passes ----------------------------

// Regression: a demand-rewritten program's magic predicates have no facts in
// the program text (their seeds arrive at query time), so the emptiness
// passes (MAD011 unreachable-rule, MAD021 transitively-empty, MAD024 empty
// aggregate input) must treat them as potentially non-empty instead of
// flagging every guarded rule copy as dead.
TEST(MagicPredicateTest, RewrittenProgramHasNoFalseEmptinessFindings) {
  // Inline facts so the only fact-less predicates in the rewritten program
  // are the magic ones (the workloads corpus keeps its EDB in generators,
  // which would trip the emptiness passes for unrelated reasons).
  auto program = ParseProgram(R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(a, b, 1).
arc(b, c, 2).
)");
  ASSERT_TRUE(program.ok()) << program.status();
  DependencyGraph graph(*program);
  demand::DemandPattern pattern{program->FindPredicate("s"), "bf"};
  demand::DemandRewrite rw =
      demand::RewriteForPattern(*program, graph, pattern);
  ASSERT_TRUE(rw.ok) << rw.bailout_reason;

  DependencyGraph rewritten_graph(rw.rewritten);
  LintContext ctx;
  ctx.program = &rw.rewritten;
  ctx.graph = &rewritten_graph;
  ctx.file = "<demand-rewrite>";
  DiagnosticList diags = MakeDefaultPassManager().Run(ctx);
  EXPECT_EQ(CountRule(diags, "MAD011"), 0) << diags.RenderText();
  EXPECT_EQ(CountRule(diags, "MAD021"), 0) << diags.RenderText();
  EXPECT_EQ(CountRule(diags, "MAD024"), 0) << diags.RenderText();
}

// --- Equivalence with the evaluator's decision ------------------------------

TEST(LintEquivalenceTest, ErrorFindingsIffOverallRejects) {
  const char* corpus[] = {
      workloads::kShortestPathProgram,
      workloads::kCompanyControlProgram,
      workloads::kCompanyControlRMonotonic,
      workloads::kPartyProgram,
      workloads::kCircuitProgram,
      workloads::kHalfsumProgram,
      // Unlimited head variable: rejected.
      R"(
.decl e(x)
.decl p(x, y)
p(X, Y) :- e(X).
)",
      // Conflicting cost rules: rejected.
      R"(
.decl e(x, c: min_real)
.decl p(x, c: min_real)
p(X, C) :- e(X, C).
p(X, D) :- e(X, C), D = C + 1.
)",
      // Recursion through negation: rejected.
      R"(
.decl e(x)
.decl p(x)
.decl q(x)
p(X) :- e(X), !q(X).
q(X) :- p(X).
)",
      // Antitone comparison on a recursive count: rejected.
      R"(
.decl e(x, y)
.decl lim(x, k: count_nat)
.decl small(x)
.decl kc(x, y)
small(X) :- lim(X, K), N = count : kc(X, Y), N < K.
kc(X, Y) :- e(X, Y), small(Y).
)",
      // Inadmissible but positively recursive: accepted with warnings.
      R"(
.decl e(x)
.decl p(x, c: min_real)
p(X, 3) :- e(X), p(X, 3).
)",
      // Descending value feeding an ascending head, positive recursion:
      // accepted with warnings.
      R"(
.decl p(x, c: max_nonneg)
.decl q2(x, c: min_real)
p(X, C) :- q2(X, C1), C = C1 + 1.
q2(X, C) :- p(X, C0), C = C0 + 1.
)",
      // Hygiene smells only: accepted.
      R"(
.decl e(x, y)
.decl p(x, y)
e(a, b).
p(X, Y) :- e(X, Y).
p(A, B) :- e(A, B).
)",
  };
  for (const char* text : corpus) {
    Linted l = Lint(text);
    ProgramCheckResult check = CheckProgram(l.program, *l.graph);
    EXPECT_EQ(check.overall().ok(), !l.diags.HasErrors())
        << "overall: " << check.overall() << "\nfindings:\n"
        << l.diags.RenderText() << "\nprogram:\n"
        << text;
    // The paper subset alone must make the same call, and CheckProgram's own
    // recorded diagnostics agree too.
    Linted paper = Lint(text, /*paper_only=*/true);
    EXPECT_EQ(paper.diags.HasErrors(), l.diags.HasErrors()) << text;
    EXPECT_EQ(check.diagnostics.HasErrors(), l.diags.HasErrors()) << text;
  }
}

TEST(CheckProgramTest, RecordsComponentDiagnosticsAndRendersThem) {
  auto p = ParseProgram(R"(
.decl e(x)
.decl p(x)
.decl q(x)
p(X) :- e(X), !q(X).
q(X) :- p(X).
)");
  ASSERT_TRUE(p.ok()) << p.status();
  DependencyGraph graph(*p);
  ProgramCheckResult r = CheckProgram(*p, graph, "neg.mdl");
  EXPECT_FALSE(r.overall().ok());
  bool component_has_error = false;
  for (const ComponentVerdict& c : r.components) {
    for (const Diagnostic& d : c.diagnostics) {
      if (d.severity == Severity::kError) component_has_error = true;
      EXPECT_EQ(d.file, "neg.mdl");
    }
  }
  EXPECT_TRUE(component_has_error);
  // ToString now folds in the shared diagnostic rendering.
  std::string s = r.ToString();
  EXPECT_NE(s.find("MAD006-recursive-negation"), std::string::npos) << s;
  EXPECT_NE(s.find("neg.mdl:"), std::string::npos) << s;
}

}  // namespace
}  // namespace lint
}  // namespace analysis
}  // namespace mad
