// Model-theoretic properties from Section 3, checked empirically:
//  * T_P monotonicity in the LDB too: growing the EDB in ⊑ can only grow
//    the least model in ⊑ (the engine-level consequence of Lemma 4.1);
//  * the least fixpoint is a fixpoint: re-running from the least model adds
//    nothing (Proposition 3.4);
//  * the least model is ⊑-least among pre-models: raising any cost and
//    re-closing never goes below the least model (Corollary 3.5).

#include <gtest/gtest.h>

#include "baselines/shortest_path.h"
#include "core/engine.h"
#include "util/random.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace {

using baselines::Graph;
using core::EvalResult;
using datalog::Database;
using datalog::Program;
using datalog::Relation;
using datalog::Tuple;
using datalog::Value;

EvalResult RunOn(const Program& program, Database edb) {
  core::Engine engine(program);
  auto result = engine.Run(std::move(edb));
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

/// db1 ⊑ db2 on cost predicates: every key of db1 appears in db2 with a
/// ⊑-greater-or-equal cost (Definition 3.3 lifted to stored relations).
bool DbLessEq(const Program& program, const Database& db1,
              const Database& db2) {
  for (const auto& [id, rel1] : db1.relations()) {
    const datalog::PredicateInfo* pred = rel1->pred();
    const Relation* rel2 = db2.Find(pred);
    bool ok = true;
    rel1->ForEach([&](const Tuple& key, const Value& cost) {
      const Value* other = rel2 != nullptr ? rel2->Find(key) : nullptr;
      if (other == nullptr) {
        // Default-value predicates implicitly carry bottom everywhere.
        ok = ok && pred->has_default &&
             pred->domain->Equal(cost, pred->domain->Bottom());
        return;
      }
      if (pred->has_cost) ok = ok && pred->domain->LessEq(cost, *other);
    });
    if (!ok) return false;
  }
  return true;
}

class EdbMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(EdbMonotonicityTest, ShortestPathsImproveWithMoreAndCheaperArcs) {
  Random rng(GetParam());
  Graph g = workloads::RandomGraph(12, 30, {2.0, 10.0}, &rng);
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());

  Database edb1;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb1).ok());
  EvalResult before = RunOn(*program, edb1.Clone());

  // Grow the EDB in ⊑: add arcs and lower (⊑-raise, min-order!) some weights.
  Graph better = g;
  for (auto& edges : better.adj) {
    for (auto& e : edges) {
      if (rng.Bernoulli(0.5)) e.weight *= 0.5;
    }
  }
  for (int i = 0; i < 5; ++i) {
    better.AddEdge(static_cast<int>(rng.Uniform(0, 11)),
                   static_cast<int>(rng.Uniform(0, 11)),
                   rng.UniformReal(1.0, 5.0));
  }
  Database edb2;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, better, &edb2).ok());
  EvalResult after = RunOn(*program, std::move(edb2));

  EXPECT_TRUE(DbLessEq(*program, before.db, after.db));
}

TEST_P(EdbMonotonicityTest, ControlGrowsWithShares) {
  Random rng(100 + GetParam());
  auto net = workloads::RandomOwnership(10, 3, 0.4, &rng);
  auto program = datalog::ParseProgram(workloads::kCompanyControlProgram);
  ASSERT_TRUE(program.ok());

  Database edb1;
  ASSERT_TRUE(workloads::AddOwnershipFacts(*program, net, &edb1).ok());
  EvalResult before = RunOn(*program, std::move(edb1));

  auto raised = net;
  for (int i = 0; i < 8; ++i) {
    int x = static_cast<int>(rng.Uniform(0, 9));
    int y = static_cast<int>(rng.Uniform(0, 9));
    if (x != y) raised.shares[x][y] = std::min(1.0, raised.shares[x][y] + 0.1);
  }
  Database edb2;
  ASSERT_TRUE(workloads::AddOwnershipFacts(*program, raised, &edb2).ok());
  EvalResult after = RunOn(*program, std::move(edb2));

  EXPECT_TRUE(DbLessEq(*program, before.db, after.db));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdbMonotonicityTest, ::testing::Range(1, 7));

TEST(FixpointTest, LeastModelIsAFixpointOfTp) {
  // Proposition 3.4: T_P(J_I, I) = J_I — feeding the least model back as the
  // starting database derives nothing new.
  Random rng(5);
  Graph g = workloads::RandomGraph(12, 30, {1.0, 9.0}, &rng);
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  EvalResult first = RunOn(*program, std::move(edb));
  std::string model = first.db.ToString();

  EvalResult second = RunOn(*program, std::move(first.db));
  EXPECT_EQ(second.db.ToString(), model);
  EXPECT_EQ(second.stats.merges_new, 0);
  EXPECT_EQ(second.stats.merges_increased, 0);
}

TEST(FixpointTest, LeastModelIsLeastAmongClosedSupersets) {
  // Corollary 3.5 empirically: plant arbitrary extra/raised facts (a
  // candidate pre-model seed), close under T_P, and the closure must sit
  // ⊑-above the least model.
  Random rng(8);
  Graph g = workloads::RandomGraph(10, 25, {1.0, 9.0}, &rng);
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok());
  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  EvalResult least = RunOn(*program, edb.Clone());

  // Seed with junk s-facts (⊑-higher than anything derivable: cost below
  // every real path cost in the min order means *numerically lower*).
  Database seeded = edb.Clone();
  const datalog::PredicateInfo* s = program->FindPredicate("s");
  for (int i = 0; i < 5; ++i) {
    Tuple key = {Value::Symbol(Graph::NodeName(
                     static_cast<int>(rng.Uniform(0, 9)))),
                 Value::Symbol(Graph::NodeName(
                     static_cast<int>(rng.Uniform(0, 9))))};
    seeded.GetOrCreate(s)->Merge(key, Value::Real(0.01));
  }
  EvalResult closed = RunOn(*program, std::move(seeded));
  EXPECT_TRUE(DbLessEq(*program, least.db, closed.db));
}

TEST(FixpointTest, CircuitLeastModelIdempotent) {
  Random rng(3);
  auto circuit = workloads::RandomCircuit(8, 60, 3, 0.3, &rng);
  auto program = datalog::ParseProgram(workloads::kCircuitProgram);
  ASSERT_TRUE(program.ok());
  Database edb;
  ASSERT_TRUE(workloads::AddCircuitFacts(*program, circuit, &edb).ok());
  EvalResult first = RunOn(*program, std::move(edb));
  std::string model = first.db.ToString();
  EvalResult second = RunOn(*program, std::move(first.db));
  EXPECT_EQ(second.db.ToString(), model);
}

}  // namespace
}  // namespace mad
