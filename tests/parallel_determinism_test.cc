// Determinism of parallel evaluation: for any thread count the engine must
// produce the *same least model* as the serial evaluator — byte-identical
// Database::ToString() and the same Completeness verdict. This is the
// correctness contract of DESIGN.md "Parallel evaluation": Relation::Merge is
// a lattice join, so derivation batches commute and the fixpoint is unique
// (Tarski) no matter how rounds are partitioned across workers.
//
// Exercised two ways: every shipped examples/*.mdl program, and a pile of
// randomized workloads across all four generator families.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/random.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

#ifndef MAD_SOURCE_DIR
#define MAD_SOURCE_DIR "."
#endif

namespace mad {
namespace core {
namespace {

using datalog::Database;
using datalog::Program;

constexpr int kParallelThreads = 8;

Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

EvalOptions Threads(int n) {
  EvalOptions options;
  options.num_threads = n;
  return options;
}

/// Runs `program` on a clone of `edb` serially and with kParallelThreads
/// participants and asserts identical least models. `label` names the
/// workload in failure messages.
void ExpectDeterministic(const Program& program, const Database& edb,
                         const std::string& label) {
  Engine serial(program, Threads(1));
  auto s = serial.Run(edb.Clone());
  ASSERT_TRUE(s.ok()) << label << ": serial run failed: " << s.status();

  Engine parallel(program, Threads(kParallelThreads));
  auto p = parallel.Run(edb.Clone());
  ASSERT_TRUE(p.ok()) << label << ": parallel run failed: " << p.status();

  EXPECT_EQ(s->completeness, p->completeness) << label;
  EXPECT_EQ(s->db.ToString(), p->db.ToString())
      << label << ": parallel least model diverges from serial";
  // Work accounting may differ round-by-round (the phased fan-out defers
  // intra-round visibility to delta rounds) but the *model-level* counters
  // must agree: both runs insert exactly the least model's keys.
  EXPECT_EQ(s->stats.merges_new, p->stats.merges_new) << label;
}

// ---------------------------------------------------------------------------
// Every shipped example program.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, AllExamplePrograms) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(MAD_SOURCE_DIR) / "examples";
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".mdl") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << "cannot open " << entry.path();
    std::stringstream buffer;
    buffer << in.rdbuf();

    Program program = MustParse(buffer.str());
    ExpectDeterministic(program, Database(), entry.path().filename().string());
    ++checked;
  }
  // The repo ships a known set of example programs; make sure the glob
  // actually found them (a wrong MAD_SOURCE_DIR would vacuously pass).
  EXPECT_GE(checked, 8);
}

// ---------------------------------------------------------------------------
// Randomized workloads: >= 50 instances across the generator families.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, RandomShortestPathGraphs) {
  Program program = MustParse(workloads::kShortestPathProgram);
  for (int i = 0; i < 20; ++i) {
    Random rng(1000 + i);
    baselines::Graph g;
    switch (i % 4) {
      case 0:
        g = workloads::RandomGraph(10 + i, 3 * (10 + i), {1.0, 9.0}, &rng);
        break;
      case 1:
        g = workloads::GridGraph(3 + i / 4, 4, {1.0, 5.0}, &rng);
        break;
      case 2:
        g = workloads::CycleGraph(8 + i, i, {1.0, 9.0}, &rng);
        break;
      default:
        g = workloads::LayeredDag(3, 3 + i / 4, 2, {1.0, 5.0}, &rng);
        break;
    }
    Database edb;
    ASSERT_TRUE(workloads::AddGraphFacts(program, g, &edb).ok());
    ExpectDeterministic(program, edb, "shortest_path/" + std::to_string(i));
  }
}

TEST(ParallelDeterminismTest, RandomOwnershipNetworks) {
  Program program = MustParse(workloads::kCompanyControlProgram);
  for (int i = 0; i < 10; ++i) {
    Random rng(2000 + i);
    auto net = workloads::RandomOwnership(8 + 2 * i, 3, 0.5, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddOwnershipFacts(program, net, &edb).ok());
    ExpectDeterministic(program, edb, "company_control/" + std::to_string(i));
  }
}

TEST(ParallelDeterminismTest, RandomCircuits) {
  Program program = MustParse(workloads::kCircuitProgram);
  for (int i = 0; i < 10; ++i) {
    Random rng(3000 + i);
    auto c = workloads::RandomCircuit(4, 10 + 3 * i, 3, 0.3, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddCircuitFacts(program, c, &edb).ok());
    ExpectDeterministic(program, edb, "circuit/" + std::to_string(i));
  }
}

TEST(ParallelDeterminismTest, RandomPartyInstances) {
  Program program = MustParse(workloads::kPartyProgram);
  for (int i = 0; i < 10; ++i) {
    Random rng(4000 + i);
    auto p = workloads::RandomParty(12 + 3 * i, 3.0, 4, 0.5, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddPartyFacts(program, p, &edb).ok());
    ExpectDeterministic(program, edb, "party/" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Thread-count sweep: the model must be identical at *every* width, not just
// the two endpoints, and oversubscription (more threads than work) is fine.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, AnyThreadCountSameModel) {
  Program program = MustParse(workloads::kShortestPathProgram);
  Random rng(77);
  baselines::Graph g = workloads::RandomGraph(25, 100, {1.0, 9.0}, &rng);
  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(program, g, &edb).ok());

  Engine serial(program, Threads(1));
  auto reference = serial.Run(edb.Clone());
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string expected = reference->db.ToString();

  for (int n : {2, 3, 4, 8, 16}) {
    Engine engine(program, Threads(n));
    auto run = engine.Run(edb.Clone());
    ASSERT_TRUE(run.ok()) << "num_threads=" << n << ": " << run.status();
    EXPECT_EQ(run->db.ToString(), expected) << "num_threads=" << n;
    EXPECT_EQ(run->completeness, Completeness::kLeastModel)
        << "num_threads=" << n;
  }
}

}  // namespace
}  // namespace core
}  // namespace mad
