// Determinism of parallel evaluation: for any thread count the engine must
// produce the *same least model* as the serial evaluator — byte-identical
// Database::ToString() and the same Completeness verdict. This is the
// correctness contract of DESIGN.md "Parallel evaluation": Relation::Merge is
// a lattice join, so derivation batches commute and the fixpoint is unique
// (Tarski) no matter how rounds are partitioned across workers.
//
// Exercised two ways: every shipped examples/*.mdl program, and a pile of
// randomized workloads across all four generator families.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/random.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

#ifndef MAD_SOURCE_DIR
#define MAD_SOURCE_DIR "."
#endif

namespace mad {
namespace core {
namespace {

using datalog::Database;
using datalog::Program;

constexpr int kParallelThreads = 8;

Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

EvalOptions Threads(int n) {
  EvalOptions options;
  options.num_threads = n;
  return options;
}

/// Runs `program` on a clone of `edb` serially and with kParallelThreads
/// participants and asserts identical least models. `label` names the
/// workload in failure messages.
void ExpectDeterministic(const Program& program, const Database& edb,
                         const std::string& label) {
  Engine serial(program, Threads(1));
  auto s = serial.Run(edb.Clone());
  ASSERT_TRUE(s.ok()) << label << ": serial run failed: " << s.status();

  Engine parallel(program, Threads(kParallelThreads));
  auto p = parallel.Run(edb.Clone());
  ASSERT_TRUE(p.ok()) << label << ": parallel run failed: " << p.status();

  EXPECT_EQ(s->completeness, p->completeness) << label;
  EXPECT_EQ(s->db.ToString(), p->db.ToString())
      << label << ": parallel least model diverges from serial";
  // Work accounting may differ round-by-round (the phased fan-out defers
  // intra-round visibility to delta rounds) but the *model-level* counters
  // must agree: both runs insert exactly the least model's keys.
  EXPECT_EQ(s->stats.merges_new, p->stats.merges_new) << label;
}

// ---------------------------------------------------------------------------
// Every shipped example program.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, AllExamplePrograms) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(MAD_SOURCE_DIR) / "examples";
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".mdl") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << "cannot open " << entry.path();
    std::stringstream buffer;
    buffer << in.rdbuf();

    Program program = MustParse(buffer.str());
    ExpectDeterministic(program, Database(), entry.path().filename().string());
    ++checked;
  }
  // The repo ships a known set of example programs; make sure the glob
  // actually found them (a wrong MAD_SOURCE_DIR would vacuously pass).
  EXPECT_GE(checked, 8);
}

// ---------------------------------------------------------------------------
// Randomized workloads: >= 50 instances across the generator families.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, RandomShortestPathGraphs) {
  Program program = MustParse(workloads::kShortestPathProgram);
  for (int i = 0; i < 20; ++i) {
    Random rng(1000 + i);
    baselines::Graph g;
    switch (i % 4) {
      case 0:
        g = workloads::RandomGraph(10 + i, 3 * (10 + i), {1.0, 9.0}, &rng);
        break;
      case 1:
        g = workloads::GridGraph(3 + i / 4, 4, {1.0, 5.0}, &rng);
        break;
      case 2:
        g = workloads::CycleGraph(8 + i, i, {1.0, 9.0}, &rng);
        break;
      default:
        g = workloads::LayeredDag(3, 3 + i / 4, 2, {1.0, 5.0}, &rng);
        break;
    }
    Database edb;
    ASSERT_TRUE(workloads::AddGraphFacts(program, g, &edb).ok());
    ExpectDeterministic(program, edb, "shortest_path/" + std::to_string(i));
  }
}

TEST(ParallelDeterminismTest, RandomOwnershipNetworks) {
  Program program = MustParse(workloads::kCompanyControlProgram);
  for (int i = 0; i < 10; ++i) {
    Random rng(2000 + i);
    auto net = workloads::RandomOwnership(8 + 2 * i, 3, 0.5, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddOwnershipFacts(program, net, &edb).ok());
    ExpectDeterministic(program, edb, "company_control/" + std::to_string(i));
  }
}

TEST(ParallelDeterminismTest, RandomCircuits) {
  Program program = MustParse(workloads::kCircuitProgram);
  for (int i = 0; i < 10; ++i) {
    Random rng(3000 + i);
    auto c = workloads::RandomCircuit(4, 10 + 3 * i, 3, 0.3, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddCircuitFacts(program, c, &edb).ok());
    ExpectDeterministic(program, edb, "circuit/" + std::to_string(i));
  }
}

TEST(ParallelDeterminismTest, RandomPartyInstances) {
  Program program = MustParse(workloads::kPartyProgram);
  for (int i = 0; i < 10; ++i) {
    Random rng(4000 + i);
    auto p = workloads::RandomParty(12 + 3 * i, 3.0, 4, 0.5, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddPartyFacts(program, p, &edb).ok());
    ExpectDeterministic(program, edb, "party/" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Thread-count sweep: the model must be identical at *every* width, not just
// the two endpoints, and oversubscription (more threads than work) is fine.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, AnyThreadCountSameModel) {
  Program program = MustParse(workloads::kShortestPathProgram);
  Random rng(77);
  baselines::Graph g = workloads::RandomGraph(25, 100, {1.0, 9.0}, &rng);
  Database edb;
  ASSERT_TRUE(workloads::AddGraphFacts(program, g, &edb).ok());

  Engine serial(program, Threads(1));
  auto reference = serial.Run(edb.Clone());
  ASSERT_TRUE(reference.ok()) << reference.status();
  const std::string expected = reference->db.ToString();

  for (int n : {2, 3, 4, 8, 16}) {
    Engine engine(program, Threads(n));
    auto run = engine.Run(edb.Clone());
    ASSERT_TRUE(run.ok()) << "num_threads=" << n << ": " << run.status();
    EXPECT_EQ(run->db.ToString(), expected) << "num_threads=" << n;
    EXPECT_EQ(run->completeness, Completeness::kLeastModel)
        << "num_threads=" << n;
  }
}

// ---------------------------------------------------------------------------
// Incremental maintenance under parallelism: Engine::Update must land on the
// same least model at every thread count, both against a serial Update run
// and against the from-scratch evaluation of the final fact set.
// ---------------------------------------------------------------------------

TEST(ParallelDeterminismTest, UpdateSameModelAcrossThreadCounts) {
  Program program = MustParse(workloads::kShortestPathProgram);
  Random rng(88);
  baselines::Graph g = workloads::RandomGraph(16, 60, {1.0, 9.0}, &rng);

  // Split the edges: half as the initial EDB, half applied via Update in
  // three batches.
  std::vector<datalog::Fact> initial, extra;
  const datalog::PredicateInfo* arc = program.FindPredicate("arc");
  ASSERT_NE(arc, nullptr);
  int i = 0;
  for (int u = 0; u < g.num_nodes; ++u) {
    for (const baselines::Graph::Edge& e : g.adj[u]) {
      datalog::Fact f;
      f.pred = arc;
      f.key = {datalog::Value::Symbol(baselines::Graph::NodeName(u)),
               datalog::Value::Symbol(baselines::Graph::NodeName(e.to))};
      f.cost = datalog::Value::Real(e.weight);
      (i++ % 2 == 0 ? initial : extra).push_back(std::move(f));
    }
  }

  auto run_with = [&](int n) -> std::string {
    Engine engine(program, Threads(n));
    Database edb;
    for (const datalog::Fact& f : initial) {
      EXPECT_TRUE(edb.AddFact(f).ok());
    }
    auto result = engine.Run(std::move(edb));
    EXPECT_TRUE(result.ok()) << "num_threads=" << n << ": " << result.status();
    if (!result.ok()) return "";
    const size_t batch = extra.size() / 3 + 1;
    for (size_t start = 0; start < extra.size(); start += batch) {
      std::vector<datalog::Fact> facts(
          extra.begin() + start,
          extra.begin() + std::min(start + batch, extra.size()));
      auto st = engine.Update(&result.value(), facts);
      EXPECT_TRUE(st.ok()) << "num_threads=" << n << ": " << st.status();
    }
    return result->db.ToString();
  };

  const std::string expected = run_with(1);
  ASSERT_FALSE(expected.empty());
  for (int n : {2, 8}) {
    EXPECT_EQ(run_with(n), expected) << "num_threads=" << n;
  }

  // And the trickled model is the least model of all the facts at once.
  Database full;
  for (const datalog::Fact& f : initial) ASSERT_TRUE(full.AddFact(f).ok());
  for (const datalog::Fact& f : extra) ASSERT_TRUE(full.AddFact(f).ok());
  Engine reference(program, Threads(1));
  auto batch = reference.Run(std::move(full));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->db.ToString(), expected);
}

}  // namespace
}  // namespace core
}  // namespace mad
