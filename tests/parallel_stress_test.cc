// Parallel evaluation under aggressive resource limits: a tripped deadline or
// cancellation mid-fan-out must still wind the pool down cleanly and return a
// *certified* partial model — Completeness::kUnderApproximation with every
// relation ⊑-below the serial least model (x ⊑ y iff Join(x, y) == y). The
// prefix-soundness argument is thread-count independent: partial merge batches
// commute, so any interrupted parallel prefix is some ⊑-below database.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/engine.h"
#include "util/random.h"
#include "util/resource_guard.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace core {
namespace {

using baselines::Graph;
using datalog::Database;
using datalog::PredicateInfo;
using datalog::Program;
using datalog::Relation;
using datalog::Tuple;
using datalog::Value;

Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

/// Asserts every relation of `partial` is ⊑-below its counterpart in `full`:
/// no invented keys, and no cost above its least-model value.
void ExpectBelowLeastModel(const Database& partial, const Database& full) {
  for (const auto& [pred_id, prel] : partial.relations()) {
    const PredicateInfo* pred = prel->pred();
    const Relation* frel = full.Find(pred);
    if (prel->empty()) continue;
    ASSERT_NE(frel, nullptr)
        << pred->name << " present only in the partial database";
    prel->ForEach([&](const Tuple& key, const Value& cost) {
      const Value* full_cost = frel->Find(key);
      ASSERT_NE(full_cost, nullptr)
          << pred->name << " has a key absent from the least model";
      if (pred->has_cost) {
        EXPECT_EQ(pred->domain->Join(cost, *full_cost), *full_cost)
            << pred->name << " cost overshoots its least-model value";
      }
    });
  }
}

/// A shortest-path workload big enough that an aggressive budget reliably
/// interrupts the fixpoint mid-flight even on slow machines.
struct StressWorkload {
  Program program;
  Database edb;
  std::string full_model;  ///< serial least model (ToString)
  Database full_db;

  /// Built once and shared: the serial reference run is the expensive part.
  static const StressWorkload& Get() {
    static StressWorkload* w = [] {
      auto* out = new StressWorkload{
          MustParse(workloads::kShortestPathProgram), {}, {}, {}};
      Random rng(99);
      Graph g = workloads::RandomGraph(80, 480, {1.0, 9.0}, &rng);
      EXPECT_TRUE(workloads::AddGraphFacts(out->program, g, &out->edb).ok());

      Engine serial(out->program);
      auto full = serial.Run(out->edb.Clone());
      EXPECT_TRUE(full.ok()) << full.status();
      out->full_model = full->db.ToString();
      out->full_db = std::move(full->db);
      return out;
    }();
    return *w;
  }
};

EvalOptions ParallelWithLimits(ResourceLimits limits) {
  EvalOptions options;
  options.num_threads = 8;
  options.limits = std::move(limits);
  options.limits.check_interval = 64;  // aggressive polling
  return options;
}

/// Checks one governed parallel run: either it beat the budget (full least
/// model) or it was interrupted with the expected limit and a certified
/// ⊑-below partial model. Returns true iff the limit actually tripped.
bool CheckGovernedRun(const StressWorkload& w, const StatusOr<EvalResult>& run,
                      LimitKind expected_limit) {
  EXPECT_TRUE(run.ok()) << run.status();
  if (!run.ok()) return false;
  if (run->completeness == Completeness::kLeastModel) {
    EXPECT_EQ(run->db.ToString(), w.full_model);
    return false;
  }
  EXPECT_EQ(run->completeness, Completeness::kUnderApproximation);
  EXPECT_EQ(run->limit_tripped, expected_limit);
  EXPECT_GE(run->tripped_component, 0);
  EXPECT_FALSE(run->stats.reached_fixpoint);
  ExpectBelowLeastModel(run->db, w.full_db);
  return true;
}

TEST(ParallelStressTest, AggressiveDeadlineYieldsCertifiedPartialModel) {
  const StressWorkload& w = StressWorkload::Get();

  // Sweep deadlines from "trips immediately" upward; every outcome along the
  // way must be certified. At least the zero deadline is guaranteed to trip.
  int tripped = 0;
  for (auto deadline : {std::chrono::microseconds(0),
                        std::chrono::microseconds(500),
                        std::chrono::microseconds(2000),
                        std::chrono::microseconds(8000)}) {
    Engine engine(w.program,
                  ParallelWithLimits(ResourceLimits::Deadline(deadline)));
    auto run = engine.Run(w.edb.Clone());
    if (CheckGovernedRun(w, run, LimitKind::kDeadline)) ++tripped;
  }
  EXPECT_GE(tripped, 1);
}

TEST(ParallelStressTest, TupleBudgetYieldsCertifiedPartialModel) {
  const StressWorkload& w = StressWorkload::Get();

  ResourceLimits limits;
  limits.max_derived_tuples = 2000;  // far below the full run's derivations
  Engine engine(w.program, ParallelWithLimits(limits));
  auto run = engine.Run(w.edb.Clone());
  EXPECT_TRUE(CheckGovernedRun(w, run, LimitKind::kTupleBudget));
}

TEST(ParallelStressTest, CancellationFromAnotherThreadWindsDownCleanly) {
  const StressWorkload& w = StressWorkload::Get();

  ResourceLimits limits;
  limits.cancellation = std::make_shared<CancellationToken>();
  Engine engine(w.program, ParallelWithLimits(limits));

  // Cancel from outside the pool while the evaluation is (very likely)
  // mid-fixpoint. Whether the cancel lands before or after completion, the
  // result must be certified.
  std::thread canceller([token = limits.cancellation] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token->Cancel();
  });
  auto run = engine.Run(w.edb.Clone());
  canceller.join();
  CheckGovernedRun(w, run, LimitKind::kCancelled);
}

TEST(ParallelStressTest, RepeatedGovernedRunsStayCertified) {
  // Hammer the same engine-shaped workload with a mid-range deadline many
  // times: races between the tripping worker and the merge phase must never
  // surface an uncertified (wrong) row. Each run draws a fresh deadline spot.
  const StressWorkload& w = StressWorkload::Get();

  for (int i = 0; i < 10; ++i) {
    auto deadline = std::chrono::microseconds(200 * (i + 1));
    Engine engine(w.program,
                  ParallelWithLimits(ResourceLimits::Deadline(deadline)));
    auto run = engine.Run(w.edb.Clone());
    CheckGovernedRun(w, run, LimitKind::kDeadline);
  }
}

}  // namespace
}  // namespace core
}  // namespace mad
