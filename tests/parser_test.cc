#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "lattice/cost_domain.h"
#include "workloads/programs.h"

namespace mad {
namespace datalog {
namespace {

Program MustParse(std::string_view text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

void ExpectParseError(std::string_view text, const char* fragment) {
  auto p = ParseProgram(text);
  ASSERT_FALSE(p.ok()) << "expected failure for: " << text;
  EXPECT_NE(p.status().message().find(fragment), std::string::npos)
      << p.status();
}

TEST(ParserTest, Declarations) {
  Program p = MustParse(R"(
.decl arc(from, to, c: min_real)
.decl coming(person)
.decl t(wire, v: bool_or) default
)");
  const PredicateInfo* arc = p.FindPredicate("arc");
  ASSERT_NE(arc, nullptr);
  EXPECT_EQ(arc->arity, 3);
  EXPECT_TRUE(arc->has_cost);
  EXPECT_EQ(arc->key_arity(), 2);
  EXPECT_EQ(arc->cost_position(), 2);
  EXPECT_EQ(arc->domain, lattice::MinRealDomain());
  EXPECT_FALSE(arc->has_default);

  const PredicateInfo* coming = p.FindPredicate("coming");
  ASSERT_NE(coming, nullptr);
  EXPECT_FALSE(coming->has_cost);
  EXPECT_EQ(coming->key_arity(), 1);

  const PredicateInfo* t = p.FindPredicate("t");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->has_default);
  EXPECT_EQ(t->domain, lattice::BoolOrDomain());
}

TEST(ParserTest, FactsLandInFactsNotRules) {
  Program p = MustParse(R"(
.decl arc(from, to, c: min_real)
arc(a, b, 1).
arc(b, c, 2.5).
)");
  EXPECT_EQ(p.rules().size(), 0u);
  ASSERT_EQ(p.facts().size(), 2u);
  EXPECT_EQ(p.facts()[0].key[0], Value::Symbol("a"));
  // Cost normalized into the domain representation (double).
  EXPECT_DOUBLE_EQ(p.facts()[0].cost->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(p.facts()[1].cost->AsDouble(), 2.5);
}

TEST(ParserTest, VariableConventionUppercaseAndUnderscore) {
  Program p = MustParse(R"(
.decl e(a, b)
.decl q(a, b)
q(X, Y) :- e(X, _), e(_, Y).
)");
  ASSERT_EQ(p.rules().size(), 1u);
  const Rule& r = p.rules()[0];
  EXPECT_TRUE(r.head.args[0].is_var());
  // The two anonymous variables must be distinct.
  EXPECT_NE(r.body[0].atom.args[1].var, r.body[1].atom.args[0].var);
}

TEST(ParserTest, QuotedStringsAreSymbols) {
  Program p = MustParse(R"(
.decl e(a, b)
e("hello world", x).
)");
  EXPECT_EQ(p.facts()[0].key[0], Value::Symbol("hello world"));
}

TEST(ParserTest, BooleansAndNegativeNumbers) {
  Program p = MustParse(R"(
.decl w(x, v: max_real)
w(a, -3).
w(b, -2.5).
.decl b(x, v: bool_or)
b(u, true).
b(v, false).
)");
  EXPECT_DOUBLE_EQ(p.facts()[0].cost->AsDouble(), -3.0);
  EXPECT_DOUBLE_EQ(p.facts()[1].cost->AsDouble(), -2.5);
  EXPECT_DOUBLE_EQ(p.facts()[2].cost->AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(p.facts()[3].cost->AsDouble(), 0.0);
}

TEST(ParserTest, RestrictedAggregateSubgoal) {
  Program p = MustParse(R"(
.decl path(x, z, y, c: min_real)
.decl s(x, y, c: min_real)
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
)");
  ASSERT_EQ(p.rules().size(), 1u);
  const Subgoal& sg = p.rules()[0].body[0];
  ASSERT_EQ(sg.kind, Subgoal::Kind::kAggregate);
  const AggregateSubgoal& agg = sg.aggregate;
  EXPECT_TRUE(agg.restricted);
  EXPECT_EQ(agg.function_name, "min");
  EXPECT_EQ(agg.multiset_var, "D");
  ASSERT_NE(agg.function, nullptr);
  EXPECT_EQ(agg.function->input_domain(), lattice::MinRealDomain());
  // Grouping = {X, Y} (appear in head); local = {Z}.
  EXPECT_EQ(agg.grouping_vars, (std::vector<std::string>{"X", "Y"}));
  EXPECT_EQ(agg.local_vars, (std::vector<std::string>{"Z"}));
}

TEST(ParserTest, ImplicitCountAggregate) {
  Program p = MustParse(R"(
.decl q(x)
.decl n(k, c: count_nat)
.decl dom(k)
n(X, N) :- dom(X), N = count : q(Y).
)");
  const AggregateSubgoal& agg = p.rules()[0].body[1].aggregate;
  EXPECT_FALSE(agg.restricted);
  EXPECT_TRUE(agg.multiset_var.empty());
  EXPECT_EQ(agg.function->output_domain(), lattice::CountNatDomain());
  EXPECT_TRUE(agg.grouping_vars.empty());
  EXPECT_EQ(agg.local_vars, (std::vector<std::string>{"Y"}));
}

TEST(ParserTest, AggregateOverConjunction) {
  Program p = MustParse(R"(
.decl gate(g, t)
.decl connect(g, w)
.decl t(w, v: bool_or) default
t(G, C) :- gate(G, and), C = and D : (connect(G, W), t(W, D)).
)");
  const AggregateSubgoal& agg = p.rules()[0].body[1].aggregate;
  EXPECT_EQ(agg.atoms.size(), 2u);
  EXPECT_EQ(agg.grouping_vars, (std::vector<std::string>{"G"}));
  EXPECT_EQ(agg.local_vars, (std::vector<std::string>{"W"}));
  // "and" over bool_or is the pseudo-monotonic pairing (Example 4.4).
  EXPECT_EQ(agg.function->monotonicity(),
            lattice::Monotonicity::kPseudoMonotonic);
}

TEST(ParserTest, BuiltinArithmeticAndComparisons) {
  Program p = MustParse(R"(
.decl e(x, y, c: min_real)
.decl p(x, y, c: min_real)
p(X, Y, C) :- e(X, Z, C1), e(Z, Y, C2), C = C1 + C2 * 2, C1 != C2, C >= 0.
)");
  const Rule& r = p.rules()[0];
  ASSERT_EQ(r.body.size(), 5u);
  EXPECT_EQ(r.body[2].kind, Subgoal::Kind::kBuiltin);
  EXPECT_EQ(r.body[2].builtin.ToString(), "C = (C1 + (C2 * 2))");
  EXPECT_EQ(r.body[3].builtin.op, CmpOp::kNe);
  EXPECT_EQ(r.body[4].builtin.op, CmpOp::kGe);
}

TEST(ParserTest, Min2Max2Expressions) {
  Program p = MustParse(R"(
.decl e(x, c: min_real)
.decl q(x, c: min_real)
q(X, C) :- e(X, C1), C = min2(C1, 10).
)");
  EXPECT_EQ(p.rules()[0].body[1].builtin.ToString(), "C = min2(C1, 10)");
}

TEST(ParserTest, NegatedSubgoal) {
  Program p = MustParse(R"(
.decl e(x)
.decl f(x)
.decl g(x)
g(X) :- e(X), !f(X).
)");
  EXPECT_EQ(p.rules()[0].body[1].kind, Subgoal::Kind::kNegatedAtom);
}

TEST(ParserTest, IntegrityConstraints) {
  Program p = MustParse(R"(
.decl arc(x, y, c: min_real)
.constraint arc(direct, Z, C).
)");
  ASSERT_EQ(p.constraints().size(), 1u);
  EXPECT_EQ(p.constraints()[0].body[0].atom.args[0].constant,
            Value::Symbol("direct"));
}

TEST(ParserTest, CommentsBothStyles) {
  Program p = MustParse(R"(
// slash comment
.decl e(x)  // trailing
% percent comment
e(a).
)");
  EXPECT_EQ(p.facts().size(), 1u);
}

TEST(ParserTest, ZeroArityPredicates) {
  Program p = MustParse(R"(
.decl flag()
.decl other(x)
other(a).
flag() :- other(X).
)");
  EXPECT_EQ(p.rules().size(), 1u);
  EXPECT_EQ(p.rules()[0].head.pred->arity, 0);
}

TEST(ParserTest, CanonicalProgramsAllParse) {
  for (const char* text :
       {workloads::kShortestPathProgram, workloads::kCompanyControlProgram,
        workloads::kCompanyControlRMonotonic, workloads::kPartyProgram,
        workloads::kCircuitProgram, workloads::kHalfsumProgram}) {
    auto p = ParseProgram(text);
    EXPECT_TRUE(p.ok()) << p.status() << "\nin:\n" << text;
  }
}

TEST(ParserTest, ProgramToStringRoundTrips) {
  Program p1 = MustParse(workloads::kShortestPathProgram);
  auto p2_or = ParseProgram(p1.ToString());
  ASSERT_TRUE(p2_or.ok()) << p2_or.status() << "\nprinted:\n" << p1.ToString();
  EXPECT_EQ(p1.ToString(), p2_or->ToString());
  EXPECT_EQ(p1.rules().size(), p2_or->rules().size());
}

TEST(ParserTest, ParseFactsInto) {
  Program p = MustParse(".decl arc(x, y, c: min_real)");
  ASSERT_TRUE(ParseFactsInto(&p, "arc(a, b, 1). arc(b, c, 2).").ok());
  EXPECT_EQ(p.facts().size(), 2u);
}

TEST(ParserTest, ParseRuleInto) {
  Program p = MustParse(R"(
.decl e(x, y)
.decl tc(x, y)
)");
  ASSERT_TRUE(ParseRuleInto(&p, "tc(X, Y) :- e(X, Y).").ok());
  ASSERT_TRUE(ParseRuleInto(&p, "tc(X, Y) :- tc(X, Z), e(Z, Y).").ok());
  EXPECT_EQ(p.rules().size(), 2u);
}

// --- Error cases -----------------------------------------------------------

TEST(ParserErrorTest, UnknownDomain) {
  ExpectParseError(".decl p(x, c: bogus_domain)", "unknown cost domain");
}

TEST(ParserErrorTest, CostArgumentMustBeLast) {
  ExpectParseError(".decl p(c: min_real, x)", "final argument");
}

TEST(ParserErrorTest, DefaultNeedsCost) {
  ExpectParseError(".decl p(x) default", "'default' requires a cost");
}

TEST(ParserErrorTest, ArityMismatch) {
  ExpectParseError(R"(
.decl e(x, y)
e(a).
)",
                   "arity");
}

TEST(ParserErrorTest, RedeclarationConflict) {
  ExpectParseError(R"(
.decl e(x, y)
.decl e(x, y, c: min_real)
)",
                   "redeclared");
}

TEST(ParserErrorTest, UnterminatedString) {
  ExpectParseError(".decl e(x)\ne(\"oops).", "unterminated");
}

TEST(ParserErrorTest, EqRWithoutAggregate) {
  ExpectParseError(R"(
.decl e(x, c: min_real)
.decl q(x, c: min_real)
q(X, C) :- e(X, C1), C =r C1 + 1.
)",
                   "'=r' is only valid in aggregate subgoals");
}

TEST(ParserErrorTest, MultisetVarInNonCostPosition) {
  ExpectParseError(R"(
.decl e(x, y, c: min_real)
.decl q(x, c: min_real)
q(X, C) :- C =r min D : e(X, D, D).
)",
                   "non-cost argument");
}

TEST(ParserErrorTest, MultisetVarNotInCostPosition) {
  ExpectParseError(R"(
.decl e(x, y)
.decl q(x, c: min_real)
q(X, C) :- C =r min D : e(X, Y).
)",
                   "does not appear in any cost argument");
}

TEST(ParserErrorTest, AggregateDomainMismatch) {
  // sum over a min-ordered domain is rejected at aggregate resolution.
  ExpectParseError(R"(
.decl e(x, c: min_real)
.decl q(x, c: min_real)
q(X, C) :- C =r sum D : e(X, D).
)",
                   "non-negative ascending");
}

TEST(ParserErrorTest, ErrorsCarryLineAndColumn) {
  // The unterminated string opens at line 2, column 3.
  auto p = ParseProgram(".decl e(x)\ne(\"oops).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 2 col 3"), std::string::npos)
      << p.status();
}

TEST(ParserErrorTest, UnexpectedCharacterCarriesPosition) {
  auto p = ParseProgram(".decl e(x)\n\ne(a) @ e(b).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 3"), std::string::npos)
      << p.status();
  EXPECT_NE(p.status().message().find("col"), std::string::npos) << p.status();
  EXPECT_NE(p.status().message().find("unexpected character"),
            std::string::npos)
      << p.status();
}

TEST(ParserErrorTest, GrammarErrorsCarryPosition) {
  // Missing '.' after the first fact: the parser trips on the second 'e'.
  auto p = ParseProgram(".decl e(x)\ne(a)\ne(b).");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("line 3 col 1"), std::string::npos)
      << p.status();
}

TEST(ParserErrorTest, EqRMisuseIsAnErrorNotAnAbort) {
  // Regression: '=r' outside an aggregate used to flow into comparison-token
  // mapping guarded only by assert(false); it must surface as ParseError with
  // a position under both debug and NDEBUG builds.
  auto p = ParseProgram(R"(
.decl e(x, c: min_real)
.decl q(x, c: min_real)
q(X, C) :- e(X, C1), C =r C1 + 1.
)");
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kParseError);
  EXPECT_NE(p.status().message().find("line 4"), std::string::npos)
      << p.status();
  EXPECT_NE(p.status().message().find("'=r' is only valid"), std::string::npos)
      << p.status();
}

TEST(ParserErrorTest, CostOutsideDomainInFact) {
  ExpectParseError(R"(
.decl p(x, c: sum_real)
p(a, -1).
)",
                   "outside domain");
}

TEST(ParserSpanTest, RuleSpansCoverTheWholeClause) {
  Program p = MustParse(R"(
.decl e(x, y)
.decl tc(x, y)
tc(X, Y) :- e(X, Y).
tc(X, Y) :-
    tc(X, Z),
    e(Z, Y).
)");
  ASSERT_EQ(p.rules().size(), 2u);
  const Rule& r0 = p.rules()[0];
  EXPECT_EQ(r0.span.ToString(), "4:1-21");
  EXPECT_EQ(r0.source_line, 4);
  // A clause spread over several lines spans from its head to the final '.'.
  const Rule& r1 = p.rules()[1];
  EXPECT_TRUE(r1.span.valid());
  EXPECT_EQ(r1.span.line, 5);
  EXPECT_EQ(r1.span.end_line, 7);
}

TEST(ParserSpanTest, AtomAndTermSpansPointAtTheirTokens) {
  Program p = MustParse(R"(
.decl e(x, y)
.decl tc(x, y)
tc(X, Y) :- e(X, Y).
)");
  ASSERT_EQ(p.rules().size(), 1u);
  const Rule& r = p.rules()[0];
  // Head atom: "tc(X, Y)" starts at column 1; body atom "e(X, Y)" at 13.
  EXPECT_EQ(r.head.span.ToString(), "4:1-9");
  EXPECT_EQ(r.head.args[0].span.ToString(), "4:4-5");
  EXPECT_EQ(r.head.args[1].span.ToString(), "4:7-8");
  ASSERT_EQ(r.body.size(), 1u);
  EXPECT_EQ(r.body[0].atom.span.ToString(), "4:13-20");
  EXPECT_EQ(r.body[0].atom.args[1].span.ToString(), "4:18-19");
}

TEST(ParserSpanTest, NegatedAtomSpanExcludesTheBang) {
  Program p = MustParse(R"(
.decl e(x)
.decl q(x)
.decl p(x)
p(X) :- e(X), !q(X).
)");
  ASSERT_EQ(p.rules().size(), 1u);
  const Subgoal& neg = p.rules()[0].body[1];
  ASSERT_EQ(neg.kind, Subgoal::Kind::kNegatedAtom);
  EXPECT_EQ(neg.atom.span.ToString(), "5:16-20");
}

TEST(ParserSpanTest, AggregateSpanRunsFromResultToClosingAtom) {
  Program p = MustParse(R"(
.decl record(s, c, g: max_real)
.decl best(s, g: max_real)
best(S, G) :- G =r max D : record(S, _C, D).
)");
  ASSERT_EQ(p.rules().size(), 1u);
  const Subgoal& sg = p.rules()[0].body[0];
  ASSERT_EQ(sg.kind, Subgoal::Kind::kAggregate);
  EXPECT_EQ(sg.aggregate.span.line, 4);
  EXPECT_EQ(sg.aggregate.span.col, 15);
  EXPECT_EQ(sg.aggregate.span.end_col, 44);
  // The result term carries its own narrower span.
  EXPECT_EQ(sg.aggregate.result.span.ToString(), "4:15-16");
}

TEST(ParserSpanTest, ProgrammaticallyBuiltRulesHaveInvalidSpans) {
  Rule r;
  r.head = Atom{};
  EXPECT_FALSE(r.span.valid());
  EXPECT_EQ(r.span.ToString(), "<unknown>");
}

}  // namespace
}  // namespace datalog
}  // namespace mad
