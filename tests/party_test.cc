// Experiment E4.3: party invitations — an "=" count aggregate through
// recursion, defined even on cyclic knows-relations where modular
// stratification fails.

#include <gtest/gtest.h>

#include "baselines/party_solver.h"
#include "core/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace {

using baselines::PartyInstance;
using baselines::SolveParty;
using datalog::Value;

std::vector<bool> RunEngine(const PartyInstance& p,
                            core::EvalOptions options = {}) {
  auto program = datalog::ParseProgram(workloads::kPartyProgram);
  EXPECT_TRUE(program.ok()) << program.status();
  datalog::Database edb;
  EXPECT_TRUE(workloads::AddPartyFacts(*program, p, &edb).ok());
  core::Engine engine(*program, options);
  auto result = engine.Run(std::move(edb));
  EXPECT_TRUE(result.ok()) << result.status();

  std::vector<bool> coming(p.num_people, false);
  const auto* rel = result->db.Find(program->FindPredicate("coming"));
  if (rel != nullptr) {
    rel->ForEach([&](const datalog::Tuple& key, const Value&) {
      coming[std::stoi(std::string(key[0].symbol_name()).substr(1))] = true;
    });
  }
  return coming;
}

TEST(PartyTest, ZeroThresholdGuestsSeedTheParty) {
  PartyInstance p;
  p.num_people = 3;
  p.threshold = {0, 1, 2};
  p.knows = {{}, {0}, {0, 1}};
  std::vector<bool> got = RunEngine(p);
  EXPECT_TRUE(got[0]);
  EXPECT_TRUE(got[1]);  // knows p0 who is coming
  EXPECT_TRUE(got[2]);  // then both p0 and p1
}

TEST(PartyTest, MutualDependenceCannotBootstrap) {
  // p0 and p1 each require the other: no collective decisions (the paper is
  // explicit about this), so the least model has nobody coming.
  PartyInstance p;
  p.num_people = 2;
  p.threshold = {1, 1};
  p.knows = {{1}, {0}};
  std::vector<bool> got = RunEngine(p);
  EXPECT_FALSE(got[0]);
  EXPECT_FALSE(got[1]);
}

TEST(PartyTest, CyclicFriendshipWithASeed) {
  // Same cycle plus a zero-threshold seed known by both: everyone comes.
  // Modular stratification would reject this knows-relation (cyclic), our
  // semantics handles it (the paper's point in Example 4.3).
  PartyInstance p;
  p.num_people = 3;
  p.threshold = {1, 1, 0};
  p.knows = {{1, 2}, {0, 2}, {}};
  std::vector<bool> got = RunEngine(p);
  EXPECT_TRUE(got[0]);
  EXPECT_TRUE(got[1]);
  EXPECT_TRUE(got[2]);
}

class PartySeedTest : public ::testing::TestWithParam<int> {};

TEST_P(PartySeedTest, MatchesDirectSolver) {
  Random rng(GetParam());
  PartyInstance p = workloads::RandomParty(40, 4.0, 3, 0.6, &rng);
  EXPECT_EQ(RunEngine(p), SolveParty(p).coming);
}

TEST_P(PartySeedTest, NaiveAndSemiNaiveAgree) {
  Random rng(50 + GetParam());
  PartyInstance p = workloads::RandomParty(25, 3.0, 2, 0.5, &rng);
  core::EvalOptions naive;
  naive.strategy = core::Strategy::kNaive;
  EXPECT_EQ(RunEngine(p, naive), RunEngine(p));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartySeedTest, ::testing::Range(1, 9));

TEST(PartyTest, AttendanceMonotoneInLoweringThresholds) {
  // Lowering requirements can only grow the party (problem-level
  // monotonicity, mirroring Definition 4.4's treatment of K).
  Random rng(77);
  PartyInstance p = workloads::RandomParty(30, 3.0, 3, 0.5, &rng);
  std::vector<bool> before = SolveParty(p).coming;
  PartyInstance relaxed = p;
  for (int& k : relaxed.threshold) k = std::max(0, k - 1);
  std::vector<bool> after = SolveParty(relaxed).coming;
  for (int i = 0; i < p.num_people; ++i) {
    if (before[i]) EXPECT_TRUE(after[i]);
  }
}

}  // namespace
}  // namespace mad
