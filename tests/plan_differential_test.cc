// Differential certification of the static planning seam: for a monotone
// program the least model is join-order independent (Tarski — the immediate
// consequence operator is the same function no matter how each rule body is
// enumerated), so evaluating under the planner's join orders must produce a
// byte-identical Database::ToString() and the same Completeness verdict as
// the textual-order oracle. This is the gate that lets JoinOrderMode::kPlanned
// be default-on: a planner bug can cost time, never answers.
//
// Exercised two ways, each at one and at kParallelThreads evaluation threads:
// every shipped examples/*.mdl program, and 50+ randomized workloads across
// the generator families.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "util/random.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

#ifndef MAD_SOURCE_DIR
#define MAD_SOURCE_DIR "."
#endif

namespace mad {
namespace core {
namespace {

using datalog::Database;
using datalog::Program;

constexpr int kParallelThreads = 8;

Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

EvalOptions Opts(JoinOrderMode mode, int threads) {
  EvalOptions options;
  options.join_order = mode;
  options.num_threads = threads;
  return options;
}

/// Runs `program` on clones of `edb` under the textual-order oracle and under
/// the planner (both serially and with kParallelThreads workers) and asserts
/// identical least models. `label` names the workload in failure messages.
void ExpectPlanInvariant(const Program& program, const Database& edb,
                         const std::string& label) {
  Engine oracle(program, Opts(JoinOrderMode::kTextual, 1));
  auto t = oracle.Run(edb.Clone());
  ASSERT_TRUE(t.ok()) << label << ": textual run failed: " << t.status();

  for (int threads : {1, kParallelThreads}) {
    Engine planned(program, Opts(JoinOrderMode::kPlanned, threads));
    auto p = planned.Run(edb.Clone());
    ASSERT_TRUE(p.ok()) << label << ": planned run (threads=" << threads
                        << ") failed: " << p.status();
    EXPECT_EQ(t->completeness, p->completeness)
        << label << " threads=" << threads;
    EXPECT_EQ(t->db.ToString(), p->db.ToString())
        << label << ": planned least model diverges from textual order"
        << " (threads=" << threads << ")";
    // Both runs insert exactly the least model's keys, whatever the join
    // order did to intermediate binding counts.
    EXPECT_EQ(t->stats.merges_new, p->stats.merges_new)
        << label << " threads=" << threads;
  }

  // The legacy greedy-tier heuristic must agree too — three modes, one model.
  Engine heuristic(program, Opts(JoinOrderMode::kHeuristic, 1));
  auto h = heuristic.Run(edb.Clone());
  ASSERT_TRUE(h.ok()) << label << ": heuristic run failed: " << h.status();
  EXPECT_EQ(t->db.ToString(), h->db.ToString()) << label;
}

// ---------------------------------------------------------------------------
// Every shipped example program.
// ---------------------------------------------------------------------------

TEST(PlanDifferentialTest, AllExamplePrograms) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(MAD_SOURCE_DIR) / "examples";
  int checked = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".mdl") continue;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << "cannot open " << entry.path();
    std::stringstream buffer;
    buffer << in.rdbuf();

    Program program = MustParse(buffer.str());
    ExpectPlanInvariant(program, Database(),
                        entry.path().filename().string());
    ++checked;
  }
  // A wrong MAD_SOURCE_DIR would vacuously pass the glob.
  EXPECT_GE(checked, 8);
}

// ---------------------------------------------------------------------------
// Randomized workloads: >= 50 instances across the generator families.
// ---------------------------------------------------------------------------

TEST(PlanDifferentialTest, RandomShortestPathGraphs) {
  Program program = MustParse(workloads::kShortestPathProgram);
  for (int i = 0; i < 20; ++i) {
    Random rng(5000 + i);
    baselines::Graph g;
    switch (i % 4) {
      case 0:
        g = workloads::RandomGraph(10 + i, 3 * (10 + i), {1.0, 9.0}, &rng);
        break;
      case 1:
        g = workloads::GridGraph(3 + i / 4, 4, {1.0, 5.0}, &rng);
        break;
      case 2:
        g = workloads::CycleGraph(8 + i, i, {1.0, 9.0}, &rng);
        break;
      default:
        g = workloads::LayeredDag(3, 3 + i / 4, 2, {1.0, 5.0}, &rng);
        break;
    }
    Database edb;
    ASSERT_TRUE(workloads::AddGraphFacts(program, g, &edb).ok());
    ExpectPlanInvariant(program, edb, "shortest_path/" + std::to_string(i));
  }
}

TEST(PlanDifferentialTest, RandomOwnershipNetworks) {
  Program program = MustParse(workloads::kCompanyControlProgram);
  for (int i = 0; i < 10; ++i) {
    Random rng(6000 + i);
    auto net = workloads::RandomOwnership(8 + 2 * i, 3, 0.5, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddOwnershipFacts(program, net, &edb).ok());
    ExpectPlanInvariant(program, edb, "company_control/" + std::to_string(i));
  }
}

TEST(PlanDifferentialTest, RandomCircuits) {
  Program program = MustParse(workloads::kCircuitProgram);
  for (int i = 0; i < 10; ++i) {
    Random rng(7000 + i);
    auto c = workloads::RandomCircuit(4, 10 + 3 * i, 3, 0.3, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddCircuitFacts(program, c, &edb).ok());
    ExpectPlanInvariant(program, edb, "circuit/" + std::to_string(i));
  }
}

TEST(PlanDifferentialTest, RandomPartyInstances) {
  Program program = MustParse(workloads::kPartyProgram);
  for (int i = 0; i < 10; ++i) {
    Random rng(8000 + i);
    auto p = workloads::RandomParty(12 + 3 * i, 3.0, 4, 0.5, &rng);
    Database edb;
    ASSERT_TRUE(workloads::AddPartyFacts(program, p, &edb).ok());
    ExpectPlanInvariant(program, edb, "party/" + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Incremental maintenance under planning: Engine::Update re-plans against the
// live database and must land on the same model as the textual-order oracle
// and as from-scratch evaluation of the final fact set.
// ---------------------------------------------------------------------------

TEST(PlanDifferentialTest, UpdateSameModelAcrossModes) {
  Program program = MustParse(workloads::kShortestPathProgram);
  Random rng(99);
  baselines::Graph g = workloads::RandomGraph(16, 60, {1.0, 9.0}, &rng);

  std::vector<datalog::Fact> initial, extra;
  const datalog::PredicateInfo* arc = program.FindPredicate("arc");
  ASSERT_NE(arc, nullptr);
  int i = 0;
  for (int u = 0; u < g.num_nodes; ++u) {
    for (const baselines::Graph::Edge& e : g.adj[u]) {
      datalog::Fact f;
      f.pred = arc;
      f.key = {datalog::Value::Symbol(baselines::Graph::NodeName(u)),
               datalog::Value::Symbol(baselines::Graph::NodeName(e.to))};
      f.cost = datalog::Value::Real(e.weight);
      (i++ % 2 == 0 ? initial : extra).push_back(std::move(f));
    }
  }

  auto run_with = [&](JoinOrderMode mode) -> std::string {
    Engine engine(program, Opts(mode, 1));
    Database edb;
    for (const datalog::Fact& f : initial) {
      EXPECT_TRUE(edb.AddFact(f).ok());
    }
    auto result = engine.Run(std::move(edb));
    EXPECT_TRUE(result.ok()) << result.status();
    if (!result.ok()) return "";
    const size_t batch = extra.size() / 3 + 1;
    for (size_t start = 0; start < extra.size(); start += batch) {
      std::vector<datalog::Fact> facts(
          extra.begin() + start,
          extra.begin() + std::min(start + batch, extra.size()));
      auto st = engine.Update(&result.value(), facts);
      EXPECT_TRUE(st.ok()) << st.status();
    }
    return result->db.ToString();
  };

  const std::string textual = run_with(JoinOrderMode::kTextual);
  ASSERT_FALSE(textual.empty());
  EXPECT_EQ(run_with(JoinOrderMode::kPlanned), textual);

  Database full;
  for (const datalog::Fact& f : initial) ASSERT_TRUE(full.AddFact(f).ok());
  for (const datalog::Fact& f : extra) ASSERT_TRUE(full.AddFact(f).ok());
  Engine reference(program, Opts(JoinOrderMode::kPlanned, 1));
  auto batch = reference.Run(std::move(full));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->db.ToString(), textual);
}

}  // namespace
}  // namespace core
}  // namespace mad
