// Property tests for the static planner: a QueryPlan is a semantic artifact
// of one rule plus the program's cardinalities, so it must be invariant
// under (a) the textual order of the rules and (b) consistent renaming of
// the predicates. A plan that changed under either transformation would
// mean the tie-breaking keys off an accident of presentation — and would
// make `mondl --explain` output unstable across refactorings.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <regex>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "analysis/plan/plan.h"
#include "datalog/parser.h"
#include "util/random.h"
#include "util/string_util.h"
#include "workloads/programs.h"

namespace mad {
namespace analysis {
namespace plan {
namespace {

datalog::Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status() << "\n" << text;
  return std::move(p).value();
}

/// Name-free signature of one rule's plan: execution order, per-step
/// adornment/kind/boundness/estimates, and the head summary. Descriptions
/// are excluded (they embed predicate names).
std::string PlanSignature(const QueryPlan& qp) {
  std::string sig = "order=";
  for (int idx : qp.Order()) sig += std::to_string(idx) + ",";
  for (const PlanStep& s : qp.steps) {
    sig += StrPrintf("|k%d^%s b%d r%.3f c%.3f x%d",
                     static_cast<int>(s.kind), s.adornment.c_str(),
                     s.bound_positions, s.est_rows, s.est_cost,
                     s.cross_join ? 1 : 0);
  }
  sig += StrPrintf("|head=%s unbound=%d complete=%d cost=%.3f",
                   qp.head_adornment.c_str(),
                   static_cast<int>(qp.unbound_head_vars.size()),
                   qp.complete ? 1 : 0, qp.est_cost);
  return sig;
}

PlanReport PlanOf(const datalog::Program& program) {
  DependencyGraph graph(program);
  return PlanProgram(program, graph,
                     CardinalityEstimates::FromProgram(program));
}

/// Appends `suffix` to every predicate name, consistently (the
/// checker_property_test transformation).
std::string RenamePredicates(const std::string& text,
                             const std::string& suffix) {
  datalog::Program program = MustParse(text);
  std::vector<std::string> names;
  for (const auto& p : program.predicates()) names.push_back(p->name);
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              return a.size() > b.size();
            });
  std::string out = text;
  for (const std::string& name : names) {
    out = std::regex_replace(out, std::regex("\\b" + name + "\\b"),
                             name + suffix);
  }
  return out;
}

const char* const kPrograms[] = {
    workloads::kShortestPathProgram,
    workloads::kCompanyControlProgram,
    workloads::kPartyProgram,
    R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), C1 >= 0, arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).
arc(a, b, 1).
arc(b, a, 2).
)",
    // Multi-join bodies with negation: the interesting tie-break cases.
    R"(
.decl e(x, y)
.decl f(x, y)
.decl g(x, y)
.decl out(x, y)
e(a, b). e(b, c). e(c, d).
f(a, b). f(b, c).
g(a, b).
out(X, Z) :- e(X, Y), f(Y, Z), !g(X, Z).
out(X, Z) :- g(X, Y), e(Y, Z).
)",
};

TEST(PlanPropertyTest, PlansInvariantUnderRuleReordering) {
  for (const char* text : kPrograms) {
    datalog::Program reference = MustParse(text);
    PlanReport want = PlanOf(reference);
    // Key plans by the rule's text: rule_index changes under reordering but
    // each rule's plan may not.
    std::map<std::string, std::string> want_by_rule;
    for (const QueryPlan& qp : want.rules) {
      want_by_rule[qp.rule->ToString()] = PlanSignature(qp);
    }

    Random rng(0xfeedULL);
    for (int trial = 0; trial < 8; ++trial) {
      datalog::Program shuffled = MustParse(text);
      auto& rules = shuffled.mutable_rules();
      std::vector<int> perm = rng.Permutation(static_cast<int>(rules.size()));
      std::vector<datalog::Rule> reordered;
      reordered.reserve(rules.size());
      for (int idx : perm) reordered.push_back(rules[idx].Clone());
      rules = std::move(reordered);

      PlanReport got = PlanOf(shuffled);
      ASSERT_EQ(got.rules.size(), want.rules.size()) << text;
      for (const QueryPlan& qp : got.rules) {
        auto it = want_by_rule.find(qp.rule->ToString());
        ASSERT_NE(it, want_by_rule.end()) << qp.rule->ToString();
        EXPECT_EQ(PlanSignature(qp), it->second)
            << text << "\nrule: " << qp.rule->ToString();
      }
    }
  }
}

TEST(PlanPropertyTest, PlansInvariantUnderPredicateRenaming) {
  for (const char* text : kPrograms) {
    PlanReport want = PlanOf(MustParse(text));
    for (const std::string& suffix : {std::string("_rn"), std::string("x")}) {
      std::string renamed_text = RenamePredicates(text, suffix);
      datalog::Program renamed = MustParse(renamed_text);
      PlanReport got = PlanOf(renamed);
      // Renaming preserves rule order, so plans align by index; the
      // signatures are name-free by construction.
      ASSERT_EQ(got.rules.size(), want.rules.size()) << renamed_text;
      for (size_t i = 0; i < got.rules.size(); ++i) {
        EXPECT_EQ(PlanSignature(got.rules[i]), PlanSignature(want.rules[i]))
            << renamed_text << "\nrule " << i;
      }
    }
  }
}

// Inferred column types are equally presentation-independent: renaming a
// predicate must not change what kinds its columns carry.
TEST(PlanPropertyTest, ColumnTypesInvariantUnderPredicateRenaming) {
  for (const char* text : kPrograms) {
    datalog::Program reference = MustParse(text);
    typing::TypeReport want = typing::InferTypes(reference);
    const std::string suffix = "_rn";
    datalog::Program renamed = MustParse(RenamePredicates(text, suffix));
    typing::TypeReport got = typing::InferTypes(renamed);
    for (const auto& p : reference.predicates()) {
      const datalog::PredicateInfo* q =
          renamed.FindPredicate(p->name + suffix);
      ASSERT_NE(q, nullptr) << p->name;
      const std::vector<typing::TypeDesc>* a = want.ForPredicate(p.get());
      const std::vector<typing::TypeDesc>* b = got.ForPredicate(q);
      ASSERT_EQ(a != nullptr, b != nullptr) << p->name;
      if (a == nullptr) continue;
      ASSERT_EQ(a->size(), b->size()) << p->name;
      for (size_t i = 0; i < a->size(); ++i) {
        EXPECT_EQ((*a)[i].kind, (*b)[i].kind) << p->name << " col " << i;
      }
    }
  }
}

}  // namespace
}  // namespace plan
}  // namespace analysis
}  // namespace mad
