// The static join-order planner (analysis/plan): SIPS adornments, greedy
// cost-driven ordering, readiness parity with the executor, the emptiness
// fixpoint, and the explain/JSON dumps.

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "analysis/dependency_graph.h"
#include "analysis/plan/plan.h"
#include "datalog/parser.h"
#include "json_lite.h"

namespace mad {
namespace analysis {
namespace plan {
namespace {

using datalog::Program;

Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

PlanReport PlanOf(const Program& program) {
  DependencyGraph graph(program);
  return PlanProgram(program, graph,
                     CardinalityEstimates::FromProgram(program));
}

TEST(CardinalityTest, FromProgramCountsInlineFacts) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl lone(x)
    e(a, b).
    e(b, c).
    e(c, d).
    lone(a).
  )");
  CardinalityEstimates cards = CardinalityEstimates::FromProgram(program);
  EXPECT_DOUBLE_EQ(cards.RowsFor(program.FindPredicate("e")), 3.0);
  EXPECT_DOUBLE_EQ(cards.RowsFor(program.FindPredicate("lone")), 1.0);
}

TEST(CardinalityTest, UnknownPredicateFallsBackToDefault) {
  Program program = MustParse(".decl idb(x)\n idb(X) :- idb(X).");
  CardinalityEstimates cards = CardinalityEstimates::FromProgram(program);
  EXPECT_DOUBLE_EQ(cards.RowsFor(program.FindPredicate("idb")),
                   CardinalityEstimates::kDefaultRows);
}

TEST(PlanTest, BoundAtomScheduledBeforeFreeScanOfBiggerRelation) {
  // big has 100 facts, small has 1: the planner must seed from small and
  // then scan big with its key bound, not the other way around.
  std::string text = ".decl small(x)\n.decl big(x, y)\n.decl out(x, y)\n";
  text += "small(s0).\n";
  for (int i = 0; i < 100; ++i) {
    text += "big(s" + std::to_string(i % 7) + ", t" + std::to_string(i) +
            ").\n";
  }
  text += "out(X, Y) :- big(X, Y), small(X).";
  Program program = MustParse(text);
  PlanReport report = PlanOf(program);
  ASSERT_EQ(report.rules.size(), 1u);
  const QueryPlan& qp = report.rules[0];
  EXPECT_TRUE(qp.complete);
  // Subgoal 1 (small) runs first, then subgoal 0 (big) with X bound.
  EXPECT_EQ(qp.Order(), (std::vector<int>{1, 0}));
  EXPECT_EQ(qp.steps[1].adornment, "bf");
  EXPECT_EQ(qp.steps[1].bound_positions, 1);
  EXPECT_EQ(qp.head_adornment, "bb");
  EXPECT_TRUE(qp.unbound_head_vars.empty());
}

TEST(PlanTest, BuiltinTestRunsAsSoonAsItsOperandsAreBound) {
  Program program = MustParse(R"(
    .decl n(x)
    .decl e(x, y)
    .decl out(x, y)
    n(a).
    e(a, b).
    out(X, Y) :- n(X), X > 0, e(X, Y).
  )");
  PlanReport report = PlanOf(program);
  const QueryPlan& qp = report.rules[0];
  // The filter (subgoal 1) is free once n binds X — it must precede the
  // e scan, cutting the rows the scan fans out of.
  EXPECT_EQ(qp.Order(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(qp.steps[1].kind, datalog::Subgoal::Kind::kBuiltin);
}

TEST(PlanTest, CrossJoinIsFlagged) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl cross(x, y)
    e(a, b).
    cross(X, Y) :- e(X, A), e(Y, B).
  )");
  PlanReport report = PlanOf(program);
  const QueryPlan& qp = report.rules[0];
  ASSERT_EQ(qp.steps.size(), 2u);
  EXPECT_FALSE(qp.steps[0].cross_join);
  EXPECT_TRUE(qp.steps[1].cross_join);
}

TEST(PlanTest, NegationWaitsForFullBoundness) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl f(x, y)
    .decl out(x, y)
    e(a, b).
    f(a, b).
    out(X, Y) :- !f(X, Y), e(X, Y).
  )");
  PlanReport report = PlanOf(program);
  const QueryPlan& qp = report.rules[0];
  EXPECT_TRUE(qp.complete);
  // The negated subgoal (textual index 0) cannot run until e binds X and Y.
  EXPECT_EQ(qp.Order(), (std::vector<int>{1, 0}));
  EXPECT_EQ(qp.steps[1].kind, datalog::Subgoal::Kind::kNegatedAtom);
  EXPECT_EQ(qp.steps[1].adornment, "bb");
}

TEST(PlanTest, UnrestrictedAggregateWaitsForGroupingVars) {
  Program program = MustParse(R"(
    .decl node(x)
    .decl w(x, c: min_real)
    .decl out(x, c: min_real)
    node(a).
    w(a, 1).
    out(X, C) :- C = min E : w(X, E), node(X).
  )");
  PlanReport report = PlanOf(program);
  const QueryPlan& qp = report.rules[0];
  EXPECT_TRUE(qp.complete);
  // "=" aggregates need their grouping variable X bound: node must run
  // first even though it is textually second.
  EXPECT_EQ(qp.Order(), (std::vector<int>{1, 0}));
  EXPECT_EQ(qp.steps[1].kind, datalog::Subgoal::Kind::kAggregate);
}

TEST(PlanTest, StuckPlanFallsBackToTextualTailIncomplete) {
  // Y occurs only in the head: no subgoal ever binds it, the body still
  // plans, and the head adornment records the hole.
  Program program = MustParse(R"(
    .decl q(x)
    .decl p(x, y)
    q(a).
    p(X, Y) :- q(X).
  )");
  PlanReport report = PlanOf(program);
  const QueryPlan& qp = report.rules[0];
  EXPECT_EQ(qp.head_adornment, "bf");
  EXPECT_EQ(qp.unbound_head_vars, (std::vector<std::string>{"Y"}));
}

TEST(PlanTest, PotentiallyNonEmptyFixpoint) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl seed(x)
    .decl chain(x)
    .decl dead(x)
    .decl live(x)
    e(a, b).
    chain(X) :- seed(X).
    dead(X) :- e(X, Y), chain(Y).
    live(X) :- e(X, Y).
  )");
  auto nonempty = PotentiallyNonEmpty(program);
  EXPECT_TRUE(nonempty.count(program.FindPredicate("e")));
  EXPECT_TRUE(nonempty.count(program.FindPredicate("live")));
  EXPECT_FALSE(nonempty.count(program.FindPredicate("seed")));
  EXPECT_FALSE(nonempty.count(program.FindPredicate("chain")));
  EXPECT_FALSE(nonempty.count(program.FindPredicate("dead")));
}

TEST(PlanTest, NegationNeverBlocksNonEmptiness) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl missing(x, y)
    .decl out(x, y)
    e(a, b).
    out(X, Y) :- e(X, Y), !missing(X, Y).
  )");
  auto nonempty = PotentiallyNonEmpty(program);
  EXPECT_TRUE(nonempty.count(program.FindPredicate("out")));
}

TEST(PlanTest, ExplainDumpMentionsAdornmentAndOrder) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl tc(x, y)
    e(a, b).
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- tc(X, Z), e(Z, Y).
  )");
  PlanReport report = PlanOf(program);
  std::string s = report.ToString();
  EXPECT_NE(s.find("inferred column types"), std::string::npos) << s;
  EXPECT_NE(s.find("join order"), std::string::npos) << s;
  // The single e fact seeds the recursive rule; tc then scans with Z bound.
  EXPECT_NE(s.find("^fb"), std::string::npos) << s;
  EXPECT_NE(s.find("head: tc^bb"), std::string::npos) << s;
}

TEST(PlanTest, JsonDumpDecodesAndMirrorsThePlan) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl tc(x, y)
    e(a, b).
    tc(X, Y) :- tc(X, Z), e(Z, Y).
  )");
  PlanReport report = PlanOf(program);
  std::optional<mad::testing::JsonValue> doc =
      mad::testing::ParseJson(report.ToJson());
  ASSERT_TRUE(doc.has_value()) << report.ToJson();
  const auto& plans = doc->At("plans").arr;
  ASSERT_EQ(plans.size(), report.rules.size());
  const auto& steps = plans[0].At("steps").arr;
  ASSERT_EQ(steps.size(), report.rules[0].steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(static_cast<int>(steps[i].At("subgoal").number),
              report.rules[0].steps[i].subgoal_index);
    EXPECT_EQ(steps[i].At("adornment").str, report.rules[0].steps[i].adornment);
  }
  EXPECT_TRUE(doc->At("types").is_array());
}

TEST(PlanTest, PlanReportForRuleBoundsChecks) {
  Program program = MustParse(".decl e(x)\n e(a).");
  PlanReport report = PlanOf(program);
  EXPECT_EQ(report.ForRule(-1), nullptr);
  EXPECT_EQ(report.ForRule(99), nullptr);
}

}  // namespace
}  // namespace plan
}  // namespace analysis
}  // namespace mad
