// Rule-level provenance: which rule produced each row's current value.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/programs.h"

namespace mad {
namespace core {
namespace {

using datalog::Value;

ParsedRun RunTracked(std::string_view text) {
  EvalOptions options;
  options.track_provenance = true;
  auto run = ParseAndRun(text, options);
  EXPECT_TRUE(run.ok()) << run.status();
  return std::move(run).value();
}

TEST(ProvenanceTest, EdbFactsMarkedAsSuch) {
  ParsedRun run = RunTracked(std::string(workloads::kShortestPathProgram) +
                             "arc(a, b, 1).\n");
  std::string why = run.result.provenance.Explain(
      *run.program, run.result.db, "arc",
      {Value::Symbol("a"), Value::Symbol("b")});
  EXPECT_NE(why.find("EDB fact"), std::string::npos) << why;
}

TEST(ProvenanceTest, DerivedFactsNameTheirRule) {
  ParsedRun run = RunTracked(std::string(workloads::kShortestPathProgram) +
                             "arc(a, b, 1).\narc(b, c, 2).\n");
  std::string why = run.result.provenance.Explain(
      *run.program, run.result.db, "s",
      {Value::Symbol("a"), Value::Symbol("c")});
  // s facts come from the aggregate rule (index 2).
  EXPECT_NE(why.find("derived by rule 2"), std::string::npos) << why;
  EXPECT_NE(why.find("=r min"), std::string::npos) << why;
  EXPECT_NE(why.find("s(a, c) = 3"), std::string::npos) << why;
}

TEST(ProvenanceTest, LastWriterWins) {
  // path(a, direct, b) comes from rule 0; path(a, c, b) (via c) from rule 1.
  ParsedRun run = RunTracked(std::string(workloads::kShortestPathProgram) +
                             "arc(a, b, 5).\narc(a, c, 1).\narc(c, b, 1).\n");
  std::string direct_why = run.result.provenance.Explain(
      *run.program, run.result.db, "path",
      {Value::Symbol("a"), Value::Symbol("direct"), Value::Symbol("b")});
  EXPECT_NE(direct_why.find("derived by rule 0"), std::string::npos)
      << direct_why;
  std::string via_why = run.result.provenance.Explain(
      *run.program, run.result.db, "path",
      {Value::Symbol("a"), Value::Symbol("c"), Value::Symbol("b")});
  EXPECT_NE(via_why.find("derived by rule 1"), std::string::npos) << via_why;
}

TEST(ProvenanceTest, DefaultValuesExplained) {
  ParsedRun run = RunTracked(std::string(workloads::kCircuitProgram) +
                             "gate(g1, and).\nconnect(g1, g1).\n");
  std::string why = run.result.provenance.Explain(
      *run.program, run.result.db, "t", {Value::Symbol("nonexistent")});
  EXPECT_NE(why.find("default value"), std::string::npos) << why;
}

TEST(ProvenanceTest, UnknownFactAndPredicate) {
  ParsedRun run = RunTracked(std::string(workloads::kShortestPathProgram) +
                             "arc(a, b, 1).\n");
  EXPECT_EQ(run.result.provenance.Explain(
                *run.program, run.result.db, "s",
                {Value::Symbol("b"), Value::Symbol("a")}),
            "unknown fact");
  EXPECT_EQ(run.result.provenance.Explain(*run.program, run.result.db,
                                          "nope", {}),
            "unknown predicate");
}

TEST(ProvenanceTest, OffByDefault) {
  auto run = ParseAndRun(std::string(workloads::kShortestPathProgram) +
                         "arc(a, b, 1).\n");
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->result.provenance.empty());
  std::string why = run->result.provenance.Explain(
      *run->program, run->result.db, "s",
      {Value::Symbol("a"), Value::Symbol("b")});
  EXPECT_NE(why.find("not recorded"), std::string::npos);
}

TEST(ProvenanceTest, TrackedUnderAllStrategies) {
  std::string text = std::string(workloads::kShortestPathProgram) +
                     "arc(a, b, 1).\narc(b, c, 2).\n";
  for (Strategy s :
       {Strategy::kNaive, Strategy::kSemiNaive, Strategy::kGreedy}) {
    EvalOptions options;
    options.strategy = s;
    options.track_provenance = true;
    auto run = ParseAndRun(text, options);
    ASSERT_TRUE(run.ok()) << run.status();
    std::string why = run->result.provenance.Explain(
        *run->program, run->result.db, "s",
        {Value::Symbol("a"), Value::Symbol("c")});
    EXPECT_NE(why.find("derived by rule"), std::string::npos)
        << StrategyName(s) << ": " << why;
  }
}

}  // namespace
}  // namespace core
}  // namespace mad
