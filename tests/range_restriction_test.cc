// Checks Definition 2.5 on (among others) exactly the positive and negative
// rules of the paper's Example 2.2.

#include <gtest/gtest.h>

#include "analysis/range_restriction.h"
#include "datalog/parser.h"

namespace mad {
namespace analysis {
namespace {

using datalog::ParseProgram;
using datalog::Program;

// Shared declarations mirroring Example 2.2's predicates.
constexpr const char* kDecls = R"(
.decl record(s, c, g)
.decl alt_class_count(c, n: count_nat)
.decl gate(g, t)
.decl connect(g, w)
.decl t(w, v: bool_or) default
.decl t2(w, x, v: bool_or) default
.decl path(x, z, y, d: min_real)
.decl s(x, y, c: min_real)
.decl q(x)
)";

Status CheckRule(const std::string& rule) {
  auto p = ParseProgram(std::string(kDecls) + rule);
  EXPECT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules().size(), 1u);
  return CheckRuleRangeRestricted(p->rules()[0]);
}

// --- The three range-restricted rules of Example 2.2 -----------------------

TEST(RangeRestrictionTest, Example22CountWithOuterGuard) {
  EXPECT_TRUE(CheckRule("alt_class_count(C, N) :- record(X, C, Y), "
                        "N = count : record(S, C, G).")
                  .ok());
}

TEST(RangeRestrictionTest, Example22CircuitAnd) {
  EXPECT_TRUE(CheckRule("t(G, C) :- gate(G, and), "
                        "C = and D : (connect(G, W), t(W, D)).")
                  .ok());
}

TEST(RangeRestrictionTest, Example22RestrictedMin) {
  EXPECT_TRUE(CheckRule("s(X, Y, C) :- C =r min D : path(X, Z, Y, D).").ok());
}

// --- The three violations of Example 2.2 -----------------------------------

TEST(RangeRestrictionTest, Example22CountWithoutGuardRejected) {
  Status st = CheckRule(
      "alt_class_count(C, N) :- N = count : record(S, C, G).");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("grouping variable C"), std::string::npos);
}

TEST(RangeRestrictionTest, Example22UnboundDefaultKeyRejected) {
  // t2(W, X, D) has the extra non-cost argument X, never limited.
  Status st = CheckRule(
      "t2(G, and, C) :- gate(G, and), "
      "C = and D : (connect(G, W), t2(W, X, D)).");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("X"), std::string::npos);
}

TEST(RangeRestrictionTest, Example22UnrestrictedMinRejected) {
  // "=" (not "=r"): the grouping variables are not limited from inside.
  Status st = CheckRule("s(X, Y, C) :- C = min D : path(X, Z, Y, D).");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("grouping variable"), std::string::npos);
}

// --- Other conditions of Definition 2.5 -------------------------------------

TEST(RangeRestrictionTest, HeadVariablesMustBeLimited) {
  Status st = CheckRule("q(X) :- q(Y).");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("head variable X"), std::string::npos);
}

TEST(RangeRestrictionTest, HeadCostMayBeQuasiLimited) {
  EXPECT_TRUE(
      CheckRule("s(X, Y, C) :- path(X, Z, Y, D), C = D + 1.").ok());
}

TEST(RangeRestrictionTest, HeadCostFromNowhereRejected) {
  Status st = CheckRule("s(X, Y, C) :- q(X), q(Y).");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("head variable C"), std::string::npos);
}

TEST(RangeRestrictionTest, NegatedSubgoalNeedsLimitedVars) {
  EXPECT_FALSE(CheckRule("q(X) :- q(X), !record(S, X, G).").ok());
  EXPECT_TRUE(
      CheckRule("q(X) :- record(S, X, G), !record(X, X, X).").ok());
}

TEST(RangeRestrictionTest, NegatedCostVarMustBeQuasiLimited) {
  EXPECT_FALSE(CheckRule("q(X) :- q(X), !s(X, X, C).").ok());
  EXPECT_TRUE(CheckRule("q(X) :- s(X, X, C), !path(X, X, X, C).").ok());
}

TEST(RangeRestrictionTest, BuiltinVarsMustBeBoundSomehow) {
  EXPECT_FALSE(CheckRule("q(X) :- q(X), Y > 3.").ok());
  EXPECT_TRUE(CheckRule("q(X) :- s(X, X, C), C > 3.").ok());
}

TEST(RangeRestrictionTest, EqualityChainsPropagateLimitedness) {
  // Y = X transfers limitedness; Z = a is a constant binding.
  EXPECT_TRUE(CheckRule("q(Y) :- q(X), Y = X.").ok());
  EXPECT_TRUE(CheckRule("q(Z) :- q(X), Z = a.").ok());
}

TEST(RangeRestrictionTest, QuasiLimitedThroughArithmeticChain) {
  EXPECT_TRUE(CheckRule("s(X, X, C) :- q(X), s(X, X, D), E = D * 2, "
                        "C = E + 1.")
                  .ok());
}

TEST(RangeRestrictionTest, DefaultValuePositiveSubgoalNeedsBoundKeys) {
  EXPECT_FALSE(CheckRule("q(W) :- t(W, D).").ok());
  EXPECT_TRUE(CheckRule("q(W) :- connect(G, W), t(W, D).").ok());
}

TEST(RangeRestrictionTest, WholeProgramCheck) {
  auto p = ParseProgram(std::string(kDecls) +
                        "q(X) :- record(X, C, G).\n"
                        "q(X) :- q(Y).\n");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(CheckRangeRestricted(*p).ok());
}

TEST(RangeRestrictionTest, ClassifyVariablesExposesBothSets) {
  auto p = ParseProgram(std::string(kDecls) +
                        "s(X, Y, C) :- path(X, Z, Y, D), C = D + 1.");
  ASSERT_TRUE(p.ok());
  VariableClassification cls = ClassifyVariables(p->rules()[0]);
  EXPECT_TRUE(cls.limited.count("X"));
  EXPECT_TRUE(cls.limited.count("Y"));
  EXPECT_TRUE(cls.limited.count("Z"));
  EXPECT_FALSE(cls.limited.count("D"));
  EXPECT_TRUE(cls.quasi_limited.count("D"));
  EXPECT_TRUE(cls.quasi_limited.count("C"));
}

}  // namespace
}  // namespace analysis
}  // namespace mad
