// Crash-recovery torture: repeatedly kill -9 a real madd process mid
// insert-storm and prove that what survives is always a sound prefix of the
// acknowledged history — and that resending the full history (idempotent
// joins) reconverges to the exact least model an uninterrupted server would
// have produced, byte-identical in the dump.
//
// This is the ctest gate `RecoveryTortureTest.*`; it runs the production
// binary (MAD_BINARY_DIR/examples/madd), not an in-process harness, so the
// whole stack — CLI flags, WAL fsync, checkpoint rotation, startup
// recovery, differential certification — is on the hook.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/state.h"

#ifndef MAD_BINARY_DIR
#define MAD_BINARY_DIR "."
#endif

namespace mad {
namespace server {
namespace {

constexpr const char* kProgram = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(n0, n1, 1).
)";

std::string TempDir() {
  std::string tmpl = ::testing::TempDir() + "mad_torture_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

struct Madd {
  pid_t pid = -1;
  int port = 0;
};

/// fork/exec madd with an ephemeral port, scraping the resolved port from
/// its single startup line on stdout.
Madd StartMadd(const std::string& program_path, const std::string& data_dir) {
  int out_pipe[2];
  EXPECT_EQ(::pipe(out_pipe), 0);
  const std::string binary = std::string(MAD_BINARY_DIR) + "/examples/madd";
  const std::string data_flag = "--data-dir=" + data_dir;
  // Small checkpoint cadence so the torture exercises checkpoint rotation
  // and pruning, not just raw WAL replay.
  pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::execl(binary.c_str(), binary.c_str(), "--port=0", data_flag.c_str(),
            "--checkpoint-every-epochs=3", program_path.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(out_pipe[1]);

  Madd m;
  m.pid = pid;
  // Read "madd: serving on 127.0.0.1:PORT\n".
  std::string line;
  char ch;
  while (::read(out_pipe[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  ::close(out_pipe[0]);
  size_t colon = line.rfind(':');
  if (colon != std::string::npos) {
    m.port = std::atoi(line.c_str() + colon + 1);
  }
  EXPECT_GT(m.port, 0) << "madd startup line: '" << line << "'";
  return m;
}

void KillHard(pid_t pid) {
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

std::string Batch(int i) {
  // A growing strongly-connected-ish graph: each batch adds an edge that
  // genuinely changes shortest paths, so a lost batch is visible in the dump.
  return "arc(n" + std::to_string(i % 7) + ", n" + std::to_string((i + 1) % 7) +
         ", " + std::to_string(1 + i % 5) + ").";
}

TEST(RecoveryTortureTest, KillNineStormThenFullResendConvergesExactly) {
  const std::string dir = TempDir();
  const std::string program_path = dir + "/program.mdl";
  {
    std::ofstream out(program_path);
    out << kProgram;
  }
  const std::string data_dir = dir + "/data";

  RetryOptions retry;
  retry.max_attempts = 20;
  retry.initial_backoff = std::chrono::milliseconds(10);
  retry.max_backoff = std::chrono::milliseconds(200);
  retry.seed = 7;

  constexpr int kCycles = 4;
  constexpr int kBatchesPerCycle = 6;
  int next_batch = 0;

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    Madd madd = StartMadd(program_path, data_dir);
    ASSERT_GT(madd.port, 0);
    auto client = Client::ConnectWithRetry("127.0.0.1", madd.port, retry);
    ASSERT_TRUE(client.ok()) << client.status();

    // Insert storm on a side thread; the main thread kills mid-storm.
    std::thread storm([&client, &next_batch] {
      for (int i = 0; i < kBatchesPerCycle; ++i) {
        auto response = client->Insert(Batch(next_batch));
        if (!response.ok() || !response->At("ok").boolean) break;
        ++next_batch;  // acknowledged
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5 + 7 * cycle));
    KillHard(madd.pid);
    storm.join();
  }

  // Final epoch: a clean server over the survived data dir. Resend the FULL
  // attempted history — acknowledged or not — and require exact convergence
  // with an uninterrupted oracle. Idempotent joins make the resend safe;
  // monotonicity makes it exact.
  Madd madd = StartMadd(program_path, data_dir);
  ASSERT_GT(madd.port, 0);
  auto client = Client::ConnectWithRetry("127.0.0.1", madd.port, retry);
  ASSERT_TRUE(client.ok()) << client.status();

  const int attempted = kCycles * kBatchesPerCycle;
  for (int i = 0; i < attempted; ++i) {
    auto response = client->CallWithRetry(
        [&] {
          Json j = Json::Object();
          j.Set("verb", Json::Str("insert"));
          j.Set("facts", Json::Str(Batch(i)));
          return j;
        }(),
        retry);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->At("ok").boolean) << response->Dump();
  }
  auto dump = client->Dump();
  ASSERT_TRUE(dump.ok()) << dump.status();

  // Durability health after four murders: enabled, not degraded.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  const Json& d = stats->At("durability");
  EXPECT_TRUE(d.At("enabled").boolean);
  EXPECT_FALSE(d.At("degraded").boolean);

  auto bye = client->Shutdown();
  EXPECT_TRUE(bye.ok()) << bye.status();
  int status = 0;
  ::waitpid(madd.pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));

  // The oracle: uninterrupted in-process evaluation of the same history.
  auto oracle = ServerState::Load(kProgram, {});
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  for (int i = 0; i < attempted; ++i) {
    Json ins = Json::Object();
    ins.Set("verb", Json::Str("insert"));
    ins.Set("facts", Json::Str(Batch(i)));
    ASSERT_TRUE((*oracle)->Handle(ins).At("ok").boolean);
  }
  Json oracle_dump = (*oracle)->Handle([] {
    Json j = Json::Object();
    j.Set("verb", Json::Str("dump"));
    return j;
  }());
  EXPECT_EQ(dump->At("model").str, oracle_dump.At("model").str);
}

// Killing madd *between* startup and first insert must also round-trip: the
// recovery-of-a-recovery case (a fresh segment was opened and nothing else).
TEST(RecoveryTortureTest, KillRightAfterRecoveryIsStable) {
  const std::string dir = TempDir();
  const std::string program_path = dir + "/program.mdl";
  {
    std::ofstream out(program_path);
    out << kProgram;
  }
  const std::string data_dir = dir + "/data";

  RetryOptions retry;
  retry.max_attempts = 20;
  retry.initial_backoff = std::chrono::milliseconds(10);
  retry.seed = 11;

  // Seed one acked batch.
  {
    Madd madd = StartMadd(program_path, data_dir);
    auto client = Client::ConnectWithRetry("127.0.0.1", madd.port, retry);
    ASSERT_TRUE(client.ok()) << client.status();
    auto response = client->Insert("arc(n1, n2, 2).");
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->At("ok").boolean);
    KillHard(madd.pid);
  }
  // Kill immediately after recovery, three times in a row.
  for (int i = 0; i < 3; ++i) {
    Madd madd = StartMadd(program_path, data_dir);
    ASSERT_GT(madd.port, 0);
    KillHard(madd.pid);
  }
  // The acked batch must still be there.
  Madd madd = StartMadd(program_path, data_dir);
  auto client = Client::ConnectWithRetry("127.0.0.1", madd.port, retry);
  ASSERT_TRUE(client.ok()) << client.status();
  auto dump = client->Dump();
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump->At("model").str.find("arc(n1, n2, 2)"), std::string::npos)
      << dump->At("model").str;
  auto bye = client->Shutdown();
  EXPECT_TRUE(bye.ok());
  int status = 0;
  ::waitpid(madd.pid, &status, 0);
}

}  // namespace
}  // namespace server
}  // namespace mad
