// Differential certification of the replication layer: several replicas
// pulling the same primary WAL under different frame batching, with torn
// connections, a primary that dies and restarts (new port, recovered from
// its data dir), checkpoint-pruned history forcing a late joiner through
// the bootstrap path — every replica must converge to the byte-identical
// model. Convergence does not depend on how the history was sliced into
// frames because every shipped batch is an idempotent, commutative lattice
// join; this test is the executable form of that argument.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "server/replication/replicator.h"
#include "server/server.h"
#include "server/state.h"

namespace mad {
namespace server {
namespace {

constexpr const char* kShortestPath = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(a, b, 1).
arc(b, c, 2).
)";

std::string TempDir() {
  std::string tmpl = ::testing::TempDir() + "mad_diff_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

Json Request(const char* verb) {
  Json j = Json::Object();
  j.Set("verb", Json::Str(verb));
  return j;
}

Json InsertRequest(const std::string& facts) {
  Json j = Request("insert");
  j.Set("facts", Json::Str(facts));
  return j;
}

/// Varied enough that every batch changes the model (fresh arcs) while
/// some batches also tighten existing shortest paths.
std::string Batch(int i) {
  return "arc(n" + std::to_string(i % 7) + ", n" + std::to_string((i + 1) % 9) +
         ", " + std::to_string(1 + i % 5) + ").";
}

std::unique_ptr<ServerState> MustLoadPrimary(const std::string& data_dir) {
  ServerState::LoadOptions options;
  options.durability.data_dir = data_dir;
  options.durability.checkpoint_every_epochs = 0;
  options.durability.checkpoint_every_bytes = 0;
  auto state = ServerState::Load(kShortestPath, std::move(options));
  EXPECT_TRUE(state.ok()) << state.status();
  return std::move(state).value();
}

std::unique_ptr<ServerState> MustLoadReplica(int primary_port) {
  ServerState::LoadOptions options;
  options.replica.enabled = true;
  options.replica.primary_host = "127.0.0.1";
  options.replica.primary_port = primary_port;
  auto state = ServerState::Load(kShortestPath, std::move(options));
  EXPECT_TRUE(state.ok()) << state.status();
  return std::move(state).value();
}

Replicator::Options PumpOptions(int port, int64_t max_records, uint64_t seed) {
  Replicator::Options opts;
  opts.primary_host = "127.0.0.1";
  opts.primary_port = port;
  opts.program_text = kShortestPath;
  opts.max_records = max_records;
  opts.poll_wait_ms = 25;
  opts.initial_backoff = std::chrono::milliseconds(5);
  opts.max_backoff = std::chrono::milliseconds(50);
  opts.seed = seed;
  return opts;
}

TEST(ReplicationDifferentialTest, ReplicasConvergeByteIdentically) {
  const std::string data_dir = TempDir();
  auto srv = Server::Start(MustLoadPrimary(data_dir), {});
  ASSERT_TRUE(srv.ok()) << srv.status();

  // Three replicas with deliberately different frame batching: one record
  // at a time, mid-sized windows, and windows that straddle the batches the
  // disconnects will tear. Shuffled segment boundaries must not matter.
  const int64_t kWindows[] = {1, 3, 7};
  std::vector<std::unique_ptr<ServerState>> replicas;
  std::vector<std::unique_ptr<Replicator>> pumps;
  for (int r = 0; r < 3; ++r) {
    replicas.push_back(MustLoadReplica((*srv)->port()));
    pumps.push_back(std::make_unique<Replicator>(
        replicas.back().get(),
        PumpOptions((*srv)->port(), kWindows[r],
                    /*seed=*/100 + static_cast<uint64_t>(r))));
    pumps.back()->Start();
  }

  // Phase 1: an insert storm with torn connections — every pump loses its
  // connection several times mid-stream and must resume from its position.
  for (int i = 0; i < 10; ++i) {
    Json ack = (*srv)->state().Handle(InsertRequest(Batch(i)));
    ASSERT_TRUE(ack.At("ok").boolean) << ack.Dump();
    pumps[static_cast<size_t>(i) % pumps.size()]->InjectDisconnect();
  }

  // Phase 2: the primary dies (server torn down, all connections reset) and
  // restarts from its data dir on a fresh port. Replicas are retargeted the
  // way an operator (or service discovery) would.
  srv->reset();
  srv = Server::Start(MustLoadPrimary(data_dir), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  ASSERT_EQ((*srv)->state().epoch(), 10);
  for (auto& pump : pumps) pump->SetEndpoint("127.0.0.1", (*srv)->port());

  // Phase 3: more inserts, then a checkpoint that prunes the shipped WAL
  // out from under every subscriber position.
  for (int i = 10; i < 20; ++i) {
    Json ack = (*srv)->state().Handle(InsertRequest(Batch(i)));
    ASSERT_TRUE(ack.At("ok").boolean) << ack.Dump();
  }
  Json sync = Request("sync");
  sync.Set("checkpoint", Json::Bool(true));
  ASSERT_TRUE((*srv)->state().Handle(sync).At("ok").boolean);

  // Phase 4: a late joiner arrives after the prune. Streaming alone cannot
  // cover its gap, so it must take the bootstrap path.
  replicas.push_back(MustLoadReplica((*srv)->port()));
  pumps.push_back(std::make_unique<Replicator>(
      replicas.back().get(),
      PumpOptions((*srv)->port(), /*max_records=*/5, /*seed=*/999)));
  pumps.back()->Start();

  const int64_t final_epoch = (*srv)->state().epoch();
  ASSERT_EQ(final_epoch, 20);
  for (size_t r = 0; r < replicas.size(); ++r) {
    EXPECT_TRUE(replicas[r]->WaitForEpoch(final_epoch,
                                          std::chrono::seconds(30)))
        << "replica " << r << " stuck at epoch "
        << replicas[r]->Pin()->epoch << " (broken=" << pumps[r]->broken()
        << ", last_error="
        << replicas[r]->replication_progress().last_error << ")";
  }
  for (auto& pump : pumps) pump->Stop();

  // The differential check proper: four independently-batched, torn, and
  // restarted replication streams end in the byte-identical model.
  const std::string oracle = (*srv)->state().Pin()->db.ToString();
  ASSERT_FALSE(oracle.empty());
  for (size_t r = 0; r < replicas.size(); ++r) {
    EXPECT_EQ(replicas[r]->Pin()->db.ToString(), oracle) << "replica " << r;
    EXPECT_EQ(replicas[r]->replication_progress().crc_failures, 0)
        << "replica " << r;
    EXPECT_FALSE(pumps[r]->broken()) << "replica " << r;
  }

  // The late joiner could not have streamed its way there.
  EXPECT_GE(replicas.back()->replication_progress().bootstraps, 1);
  // The torn pumps really did reconnect (the tears were not no-ops).
  EXPECT_GE(replicas[0]->replication_progress().reconnects, 1);

  // Read-your-writes across the fleet: one more acknowledged write, and a
  // token-carrying read on every replica either waits it in or fails
  // structurally — it never silently shows the pre-insert model.
  Json ack = (*srv)->state().Handle(InsertRequest("arc(z0, z1, 1)."));
  ASSERT_TRUE(ack.At("ok").boolean);
  const int64_t token = ack.IntOr("epoch", 0);
  ASSERT_EQ(token, final_epoch + 1);
  for (auto& pump : pumps) pump->Start();
  for (size_t r = 0; r < replicas.size(); ++r) {
    Json read = Request("dump");
    read.Set("min_epoch", Json::Int(token));
    read.Set("min_epoch_wait_ms", Json::Int(15000));
    Json response = replicas[r]->Handle(read);
    ASSERT_TRUE(response.At("ok").boolean)
        << "replica " << r << ": " << response.Dump();
    EXPECT_GE(response.IntOr("epoch", 0), token) << "replica " << r;
    EXPECT_NE(response.StrOr("model", "").find("arc(z0, z1, 1)"),
              std::string::npos)
        << "replica " << r;
  }
  for (auto& pump : pumps) pump->Stop();
}

}  // namespace
}  // namespace server
}  // namespace mad
