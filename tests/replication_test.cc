// Replication semantics: read-your-writes epoch tokens (blocking reads,
// structured kReplicaLagging), write redirection off replicas, the
// repl_subscribe/repl_frames shipping protocol (committed gate, CRC
// forwarding, prune signaling, bootstrap), and the Replicator pump
// end-to-end against a real Server.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/replication/replicator.h"
#include "server/replication/wal_cursor.h"
#include "server/server.h"
#include "server/state.h"
#include "server/wal.h"

namespace mad {
namespace server {
namespace {

constexpr const char* kShortestPath = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(a, b, 1).
arc(b, c, 2).
)";

std::string TempDir() {
  std::string tmpl = ::testing::TempDir() + "mad_repl_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

Json Request(const char* verb) {
  Json j = Json::Object();
  j.Set("verb", Json::Str(verb));
  return j;
}

Json InsertRequest(const std::string& facts) {
  Json j = Request("insert");
  j.Set("facts", Json::Str(facts));
  return j;
}

std::string ErrorCode(const Json& response) {
  return response.At("error").StrOr("code", "");
}

std::unique_ptr<ServerState> MustLoadPrimary(const std::string& data_dir) {
  ServerState::LoadOptions options;
  options.durability.data_dir = data_dir;
  options.durability.checkpoint_every_epochs = 0;
  options.durability.checkpoint_every_bytes = 0;
  auto state = ServerState::Load(kShortestPath, std::move(options));
  EXPECT_TRUE(state.ok()) << state.status();
  return std::move(state).value();
}

std::unique_ptr<ServerState> MustLoadReplica(const std::string& host,
                                             int port) {
  ServerState::LoadOptions options;
  options.replica.enabled = true;
  options.replica.primary_host = host;
  options.replica.primary_port = port;
  auto state = ServerState::Load(kShortestPath, std::move(options));
  EXPECT_TRUE(state.ok()) << state.status();
  return std::move(state).value();
}

Replicator::Options PumpOptions(int port) {
  Replicator::Options opts;
  opts.primary_host = "127.0.0.1";
  opts.primary_port = port;
  opts.program_text = kShortestPath;
  opts.poll_wait_ms = 50;
  opts.initial_backoff = std::chrono::milliseconds(5);
  opts.max_backoff = std::chrono::milliseconds(100);
  opts.seed = 17;
  return opts;
}

// --- role plumbing --------------------------------------------------------

TEST(ReplicationTest, ReplicaModeExcludesLocalDurability) {
  ServerState::LoadOptions options;
  options.replica.enabled = true;
  options.replica.primary_host = "127.0.0.1";
  options.replica.primary_port = 7;
  options.durability.data_dir = TempDir();
  auto state = ServerState::Load(kShortestPath, std::move(options));
  EXPECT_FALSE(state.ok());
}

TEST(ReplicationTest, RolesAreVisibleInPingAndStats) {
  auto replica = MustLoadReplica("127.0.0.1", 7);
  Json ping = replica->Handle(Request("ping"));
  EXPECT_EQ(ping.StrOr("role", ""), "replica");
  Json stats = replica->Handle(Request("stats"));
  EXPECT_EQ(stats.At("replication").StrOr("role", ""), "replica");
  EXPECT_EQ(stats.At("replication").StrOr("primary", ""), "127.0.0.1:7");

  auto primary = ServerState::Load(kShortestPath, {});
  ASSERT_TRUE(primary.ok());
  Json pstats = (*primary)->Handle(Request("stats"));
  EXPECT_EQ(pstats.At("replication").StrOr("role", ""), "primary");
}

TEST(ReplicationTest, WritesOnAReplicaRedirectToThePrimary) {
  auto replica = MustLoadReplica("10.0.0.9", 7407);
  for (const char* verb : {"insert", "sync", "recover"}) {
    Json request = verb == std::string("insert")
                       ? InsertRequest("arc(c, d, 3).")
                       : Request(verb);
    Json response = replica->Handle(request);
    EXPECT_FALSE(response.At("ok").boolean) << verb;
    EXPECT_EQ(ErrorCode(response), "NotPrimary") << verb;
    EXPECT_EQ(response.At("redirect").StrOr("host", ""), "10.0.0.9") << verb;
    EXPECT_EQ(response.At("redirect").IntOr("port", 0), 7407) << verb;
  }
  // Nothing was applied.
  EXPECT_EQ(replica->epoch(), 0);
}

// --- read-your-writes tokens ----------------------------------------------

TEST(ReplicationTest, LaggingReplicaReturnsStructuredLagNotStaleData) {
  auto replica = MustLoadReplica("127.0.0.1", 7);
  Json read = Request("dump");
  read.Set("min_epoch", Json::Int(5));
  read.Set("min_epoch_wait_ms", Json::Int(0));
  Json response = replica->Handle(read);
  ASSERT_FALSE(response.At("ok").boolean);
  EXPECT_EQ(ErrorCode(response), "ReplicaLagging");
  EXPECT_EQ(response.IntOr("epoch", -1), 0);
  EXPECT_EQ(response.IntOr("min_epoch", -1), 5);
}

TEST(ReplicationTest, MinEpochReadBlocksUntilTheBatchIsApplied) {
  auto replica = MustLoadReplica("127.0.0.1", 7);
  std::thread pump([&replica] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Status applied = replica->ApplyReplicated(1, "arc(c, d, 3).");
    EXPECT_TRUE(applied.ok()) << applied;
  });
  Json read = Request("dump");
  read.Set("min_epoch", Json::Int(1));
  read.Set("min_epoch_wait_ms", Json::Int(5000));
  Json response = replica->Handle(read);
  pump.join();
  ASSERT_TRUE(response.At("ok").boolean) << response.Dump();
  EXPECT_GE(response.IntOr("epoch", 0), 1);
  EXPECT_NE(response.StrOr("model", "").find("arc(c, d, 3)"),
            std::string::npos);
}

TEST(ReplicationTest, MinEpochIsTrivialOnACaughtUpNode) {
  auto primary = ServerState::Load(kShortestPath, {});
  ASSERT_TRUE(primary.ok());
  Json ack = (*primary)->Handle(InsertRequest("arc(c, d, 3)."));
  ASSERT_TRUE(ack.At("ok").boolean);
  const int64_t token = ack.IntOr("epoch", 0);
  ASSERT_GE(token, 1);

  Json read = Request("dump");
  read.Set("min_epoch", Json::Int(token));
  Json response = (*primary)->Handle(read);
  EXPECT_TRUE(response.At("ok").boolean);
  EXPECT_GE(response.IntOr("epoch", 0), token);
}

// --- the shipping protocol -------------------------------------------------

TEST(ReplicationTest, ReplSubscribeRequiresDurability) {
  auto primary = ServerState::Load(kShortestPath, {});
  ASSERT_TRUE(primary.ok());
  Json response = (*primary)->Handle(Request("repl_subscribe"));
  EXPECT_FALSE(response.At("ok").boolean);
  EXPECT_EQ(ErrorCode(response), "InvalidArgument");
}

TEST(ReplicationTest, FramesShipAcknowledgedBatchesWithVerifiableCrcs) {
  auto primary = MustLoadPrimary(TempDir());
  ASSERT_TRUE(primary->Handle(InsertRequest("arc(c, d, 3).")).At("ok").boolean);
  ASSERT_TRUE(primary->Handle(InsertRequest("arc(d, e, 4).")).At("ok").boolean);

  Json sub = primary->Handle(Request("repl_subscribe"));
  ASSERT_TRUE(sub.At("ok").boolean) << sub.Dump();
  EXPECT_EQ(sub.StrOr("program", ""), kShortestPath);
  EXPECT_EQ(sub.IntOr("epoch", -1), 2);
  // The whole history is still in the WAL: streaming alone suffices.
  EXPECT_TRUE(sub.At("bootstrap").is_null());

  Json req = Request("repl_frames");
  req.Set("seq", Json::Int(sub.IntOr("seq", 0)));
  req.Set("offset", Json::Int(sub.IntOr("offset", 0)));
  Json frame = primary->Handle(req);
  ASSERT_TRUE(frame.At("ok").boolean) << frame.Dump();
  ASSERT_EQ(frame.IntOr("count", -1), 2);
  const Json& records = frame.At("records");
  ASSERT_EQ(records.arr.size(), 2u);
  for (size_t i = 0; i < records.arr.size(); ++i) {
    WalRecord rec;
    rec.type = WalRecordType::kInsert;
    rec.epoch = records.arr[i].IntOr("epoch", 0);
    rec.facts_text = records.arr[i].At("facts").str;
    EXPECT_EQ(rec.epoch, static_cast<int64_t>(i) + 1);
    // End-to-end integrity: the shipped CRC re-verifies against content.
    EXPECT_EQ(static_cast<uint32_t>(records.arr[i].IntOr("crc", 0)),
              WalPayloadCrc(rec));
  }

  // Polling from the returned position: caught up, empty frame.
  Json more = Request("repl_frames");
  more.Set("seq", Json::Int(frame.IntOr("seq", 0)));
  more.Set("offset", Json::Int(frame.IntOr("offset", 0)));
  Json empty = primary->Handle(more);
  ASSERT_TRUE(empty.At("ok").boolean);
  EXPECT_EQ(empty.IntOr("count", -1), 0);
}

TEST(ReplicationTest, PruneSignalsTheSubscriberAndBootstrapCoversTheGap) {
  auto primary = MustLoadPrimary(TempDir());
  ASSERT_TRUE(primary->Handle(InsertRequest("arc(c, d, 3).")).At("ok").boolean);

  // Checkpoint + rotate + prune: segment 1 disappears.
  Json sync = Request("sync");
  sync.Set("checkpoint", Json::Bool(true));
  ASSERT_TRUE(primary->Handle(sync).At("ok").boolean);

  Json req = Request("repl_frames");
  req.Set("seq", Json::Int(1));
  req.Set("offset", Json::Int(8));
  Json frame = primary->Handle(req);
  ASSERT_TRUE(frame.At("ok").boolean) << frame.Dump();
  EXPECT_TRUE(frame.At("position_pruned").boolean);

  // A fresh subscriber's gap is no longer WAL-covered: bootstrap required,
  // carrying the full accepted history.
  Json sub = Request("repl_subscribe");
  sub.Set("have_epoch", Json::Int(0));
  Json response = primary->Handle(sub);
  ASSERT_TRUE(response.At("ok").boolean) << response.Dump();
  const Json& bootstrap = response.At("bootstrap");
  ASSERT_TRUE(bootstrap.is_object());
  EXPECT_EQ(bootstrap.IntOr("epoch", -1), 1);
  EXPECT_NE(bootstrap.At("facts").str.find("arc(c, d, 3)"),
            std::string::npos);

  // A caught-up subscriber (have_epoch == committed) needs none.
  Json caught = Request("repl_subscribe");
  caught.Set("have_epoch", Json::Int(1));
  Json caught_resp = primary->Handle(caught);
  ASSERT_TRUE(caught_resp.At("ok").boolean);
  EXPECT_TRUE(caught_resp.At("bootstrap").is_null());
}

TEST(ReplicationTest, SubscribeAnchorsStreamingToAConcreteSegment) {
  auto primary = MustLoadPrimary(TempDir());
  ASSERT_TRUE(primary->Handle(InsertRequest("arc(c, d, 3).")).At("ok").boolean);

  // The handed-out position names the oldest retained segment rather than
  // the floating "oldest available" {0,0}: {0,0} can never report
  // position_pruned, so a checkpoint prune racing the subscribe's gap check
  // could silently drop history out from under the stream.
  Json sub = Request("repl_subscribe");
  sub.Set("have_epoch", Json::Int(0));
  Json response = primary->Handle(sub);
  ASSERT_TRUE(response.At("ok").boolean) << response.Dump();
  const int64_t seq = response.IntOr("seq", 0);
  EXPECT_GE(seq, 1);

  // Streaming from the anchored position ships the history as usual.
  Json req = Request("repl_frames");
  req.Set("seq", Json::Int(seq));
  req.Set("offset", Json::Int(response.IntOr("offset", -1)));
  Json frame = primary->Handle(req);
  ASSERT_TRUE(frame.At("ok").boolean) << frame.Dump();
  EXPECT_EQ(frame.IntOr("count", -1), 1);

  // A prune landing after the subscribe response invalidates the anchored
  // position *explicitly* — the subscriber re-subscribes for a fresh
  // verdict instead of resuming past the hole.
  Json sync = Request("sync");
  sync.Set("checkpoint", Json::Bool(true));
  ASSERT_TRUE(primary->Handle(sync).At("ok").boolean);
  Json stale = Request("repl_frames");
  stale.Set("seq", Json::Int(seq));
  stale.Set("offset", Json::Int(0));
  Json pruned = primary->Handle(stale);
  ASSERT_TRUE(pruned.At("ok").boolean) << pruned.Dump();
  EXPECT_TRUE(pruned.At("position_pruned").boolean);
}

// --- the pump, end to end --------------------------------------------------

TEST(ReplicationTest, ReplicatorStreamsInsertsIntoAnIdenticalModel) {
  auto srv = Server::Start(MustLoadPrimary(TempDir()), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  Server& primary = **srv;

  auto replica = MustLoadReplica("127.0.0.1", primary.port());
  Replicator pump(replica.get(), PumpOptions(primary.port()));
  pump.Start();

  for (int i = 0; i < 5; ++i) {
    Json ack = primary.state().Handle(InsertRequest(
        "arc(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ", " +
        std::to_string(i + 1) + ")."));
    ASSERT_TRUE(ack.At("ok").boolean) << ack.Dump();
  }
  ASSERT_TRUE(replica->WaitForEpoch(5, std::chrono::seconds(10)));
  pump.Stop();

  EXPECT_EQ(replica->Pin()->db.ToString(),
            primary.state().Pin()->db.ToString());
  EXPECT_FALSE(pump.broken());
  auto progress = replica->replication_progress();
  EXPECT_EQ(progress.crc_failures, 0);
  EXPECT_GE(progress.records_applied, 5);
}

TEST(ReplicationTest, ReplicatorSurvivesInjectedDisconnects) {
  auto srv = Server::Start(MustLoadPrimary(TempDir()), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  Server& primary = **srv;

  auto replica = MustLoadReplica("127.0.0.1", primary.port());
  Replicator pump(replica.get(), PumpOptions(primary.port()));
  pump.Start();

  for (int i = 0; i < 8; ++i) {
    Json ack = primary.state().Handle(InsertRequest(
        "arc(n" + std::to_string(i % 3) + ", n" + std::to_string(i + 1) +
        ", " + std::to_string(1 + i % 4) + ")."));
    ASSERT_TRUE(ack.At("ok").boolean);
    if (i % 2 == 1) pump.InjectDisconnect();
  }
  ASSERT_TRUE(replica->WaitForEpoch(8, std::chrono::seconds(10)));
  pump.Stop();
  EXPECT_EQ(replica->Pin()->db.ToString(),
            primary.state().Pin()->db.ToString());
}

// Regression: a WAL record larger than the pump's per-frame byte budget.
// Without the scan-side one-record overscan, the primary's frame handler
// cuts the window right after the oversized record, the window-final
// withholding rule then returns an empty selection with next == from, and
// the replica re-polls the same position forever — a silent stall.
TEST(ReplicationTest, RecordLargerThanTheFrameByteBudgetStillStreams) {
  auto srv = Server::Start(MustLoadPrimary(TempDir()), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  Server& primary = **srv;

  std::string big;
  for (int i = 0; i < 40; ++i) {
    big += "arc(g" + std::to_string(i) + ", g" + std::to_string(i + 1) +
           ", 1).\n";
  }
  ASSERT_TRUE(
      primary.state().Handle(InsertRequest("arc(c, d, 3).")).At("ok").boolean);
  ASSERT_TRUE(primary.state().Handle(InsertRequest(big)).At("ok").boolean);
  ASSERT_TRUE(
      primary.state().Handle(InsertRequest("arc(d, e, 4).")).At("ok").boolean);

  auto replica = MustLoadReplica("127.0.0.1", primary.port());
  Replicator::Options opts = PumpOptions(primary.port());
  opts.max_bytes = 64;  // far below the big batch
  ASSERT_GT(big.size(), static_cast<size_t>(opts.max_bytes));
  Replicator pump(replica.get(), opts);
  pump.Start();
  ASSERT_TRUE(replica->WaitForEpoch(3, std::chrono::seconds(10)));
  pump.Stop();
  EXPECT_FALSE(pump.broken());
  EXPECT_EQ(replica->Pin()->db.ToString(),
            primary.state().Pin()->db.ToString());
}

// Regression: every reconnect re-streams the whole retained WAL (the
// subscribe response carries no resume position), and the replica must
// deduplicate already-covered batches instead of re-appending them to its
// history copy — otherwise each reconnect grows the replica's memory by a
// full duplicate of the primary's history.
TEST(ReplicationTest, ReconnectsDoNotGrowTheReplicaHistory) {
  auto srv = Server::Start(MustLoadPrimary(TempDir()), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  Server& primary = **srv;

  auto replica = MustLoadReplica("127.0.0.1", primary.port());
  Replicator pump(replica.get(), PumpOptions(primary.port()));
  pump.Start();

  int64_t epoch = 0;
  for (int i = 0; i < 4; ++i) {
    Json ack = primary.state().Handle(InsertRequest(
        "arc(h" + std::to_string(i) + ", h" + std::to_string(i + 1) +
        ", 2)."));
    ASSERT_TRUE(ack.At("ok").boolean);
    epoch = ack.IntOr("epoch", 0);
  }
  ASSERT_TRUE(replica->WaitForEpoch(epoch, std::chrono::seconds(10)));

  // Each tear forces a fresh session that re-streams from segment 0. The
  // extra insert afterwards is the progress signal: once it arrives, the
  // session has already re-shipped (and the replica skipped) everything
  // before it.
  for (int i = 0; i < 3; ++i) {
    const int64_t torn = replica->replication_progress().reconnects;
    pump.InjectDisconnect();
    // Wait for the torn session to actually end — otherwise the next batch
    // could slip through the old session and prove nothing about the
    // re-stream path.
    for (int spin = 0;
         spin < 1000 && replica->replication_progress().reconnects == torn;
         ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GT(replica->replication_progress().reconnects, torn);
    Json ack = primary.state().Handle(InsertRequest(
        "arc(k" + std::to_string(i) + ", k" + std::to_string(i + 1) +
        ", 3)."));
    ASSERT_TRUE(ack.At("ok").boolean);
    epoch = ack.IntOr("epoch", 0);
    ASSERT_TRUE(replica->WaitForEpoch(epoch, std::chrono::seconds(10)));
  }
  pump.Stop();

  Json rstats = replica->Handle(Request("stats"));
  Json pstats = primary.state().Handle(Request("stats"));
  const int64_t replica_history =
      rstats.At("replication").IntOr("history_bytes", -1);
  const int64_t primary_history =
      pstats.At("replication").IntOr("history_bytes", -2);
  EXPECT_GT(replica_history, 0);
  // Byte-identical history, not history × (1 + reconnects).
  EXPECT_EQ(replica_history, primary_history);
  EXPECT_EQ(replica->Pin()->db.ToString(),
            primary.state().Pin()->db.ToString());
}

// The satellite guarantee, stated as the user sees it: insert on the
// primary, read your own write from a *lagging* replica with the returned
// epoch token. Either the read blocks until the batch arrives and shows it,
// or it fails with structured lag — it never silently serves the
// pre-insert snapshot.
TEST(ReplicationTest, ReadYourWritesFromALaggingReplica) {
  auto srv = Server::Start(MustLoadPrimary(TempDir()), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  Server& primary = **srv;

  auto replica = MustLoadReplica("127.0.0.1", primary.port());
  Replicator pump(replica.get(), PumpOptions(primary.port()));
  pump.Start();

  for (int i = 0; i < 6; ++i) {
    const std::string fact = "arc(m" + std::to_string(i) + ", m" +
                             std::to_string(i + 1) + ", 1).";
    Json ack = primary.state().Handle(InsertRequest(fact));
    ASSERT_TRUE(ack.At("ok").boolean);
    const int64_t token = ack.IntOr("epoch", 0);

    // Impatient read first: with a zero deadline the replica must either
    // already have the batch or say so — staleness is never silent.
    Json impatient = Request("dump");
    impatient.Set("min_epoch", Json::Int(token));
    impatient.Set("min_epoch_wait_ms", Json::Int(0));
    Json quick = replica->Handle(impatient);
    if (quick.At("ok").boolean) {
      EXPECT_GE(quick.IntOr("epoch", 0), token);
      EXPECT_NE(quick.StrOr("model", "").find(fact.substr(0, fact.size() - 1)),
                std::string::npos)
          << quick.Dump();
    } else {
      EXPECT_EQ(ErrorCode(quick), "ReplicaLagging");
    }

    // Patient read: must see the write.
    Json patient = Request("dump");
    patient.Set("min_epoch", Json::Int(token));
    patient.Set("min_epoch_wait_ms", Json::Int(10000));
    Json read = replica->Handle(patient);
    ASSERT_TRUE(read.At("ok").boolean) << read.Dump();
    EXPECT_GE(read.IntOr("epoch", 0), token);
    EXPECT_NE(read.StrOr("model", "").find(fact.substr(0, fact.size() - 1)),
              std::string::npos);
  }
  pump.Stop();
}

}  // namespace
}  // namespace server
}  // namespace mad
