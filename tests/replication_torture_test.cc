// Replication torture: a real primary madd is murdered (kill -9) mid
// insert-storm, over and over, while two real replica madd processes —
// started with no program file, so they fetch it over the wire — keep
// pulling its WAL. After the last restart and a full idempotent resend,
// both replicas must converge to the primary's byte-identical dump, and
// writes sent to a replica must bounce with a redirect to the primary.
//
// Like recovery_torture_test, this runs the production binary
// (MAD_BINARY_DIR/examples/madd): CLI flags, program fetch, reconnect
// backoff, checkpoint pruning under the subscriber, and bootstrap are all
// on the hook.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

#ifndef MAD_BINARY_DIR
#define MAD_BINARY_DIR "."
#endif

namespace mad {
namespace server {
namespace {

constexpr const char* kProgram = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(n0, n1, 1).
)";

std::string TempDir() {
  std::string tmpl = ::testing::TempDir() + "mad_repl_torture_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

struct Madd {
  pid_t pid = -1;
  int port = 0;
};

/// fork/exec madd with the given flags, scraping the resolved port from its
/// single startup line on stdout.
Madd StartMadd(const std::vector<std::string>& flags) {
  int out_pipe[2];
  EXPECT_EQ(::pipe(out_pipe), 0);
  const std::string binary = std::string(MAD_BINARY_DIR) + "/examples/madd";
  pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& flag : flags) {
      argv.push_back(const_cast<char*>(flag.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    ::_exit(127);
  }
  ::close(out_pipe[1]);

  Madd m;
  m.pid = pid;
  std::string line;
  char ch;
  while (::read(out_pipe[0], &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  ::close(out_pipe[0]);
  size_t colon = line.rfind(':');
  if (colon != std::string::npos) {
    m.port = std::atoi(line.c_str() + colon + 1);
  }
  EXPECT_GT(m.port, 0) << "madd startup line: '" << line << "'";
  return m;
}

void KillHard(pid_t pid) {
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

void ShutdownClean(Client* client, pid_t pid) {
  auto bye = client->Shutdown();
  EXPECT_TRUE(bye.ok()) << bye.status();
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
}

std::string Batch(int i) {
  return "arc(n" + std::to_string(i % 7) + ", n" + std::to_string((i + 1) % 7) +
         ", " + std::to_string(1 + i % 5) + ").";
}

TEST(ReplicationTortureTest, ReplicasSurvivePrimaryMurdersAndConverge) {
  const std::string dir = TempDir();
  const std::string program_path = dir + "/program.mdl";
  {
    std::ofstream out(program_path);
    out << kProgram;
  }
  const std::string data_flag = "--data-dir=" + dir + "/data";

  RetryOptions retry;
  retry.max_attempts = 30;
  retry.initial_backoff = std::chrono::milliseconds(10);
  retry.max_backoff = std::chrono::milliseconds(200);
  retry.seed = 13;

  // The primary starts ephemeral once; every restart reclaims the SAME port
  // so the replicas' --replica-of endpoint stays valid across murders.
  Madd primary = StartMadd(
      {"--port=0", data_flag, "--checkpoint-every-epochs=3", program_path});
  ASSERT_GT(primary.port, 0);
  const std::string port_flag = "--port=" + std::to_string(primary.port);
  const std::string replica_flag =
      "--replica-of=127.0.0.1:" + std::to_string(primary.port);

  // Two replicas, deliberately started WITHOUT a program file: they must
  // fetch the program from the primary before they can serve at all.
  Madd replicas[2];
  for (Madd& r : replicas) {
    r = StartMadd({"--port=0", replica_flag});
    ASSERT_GT(r.port, 0);
  }

  constexpr int kCycles = 3;
  constexpr int kBatchesPerCycle = 6;
  int next_batch = 0;

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    auto client = Client::ConnectWithRetry("127.0.0.1", primary.port, retry);
    ASSERT_TRUE(client.ok()) << client.status();
    std::thread storm([&client, &next_batch] {
      for (int i = 0; i < kBatchesPerCycle; ++i) {
        auto response = client->Insert(Batch(next_batch));
        if (!response.ok() || !response->At("ok").boolean) break;
        ++next_batch;
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5 + 9 * cycle));
    KillHard(primary.pid);
    storm.join();
    // Restart on the same port; the replicas reconnect on their own.
    primary = StartMadd({port_flag, data_flag, "--checkpoint-every-epochs=3",
                         program_path});
    ASSERT_EQ(primary.port, std::atoi(port_flag.c_str() + 7));
  }

  // Full idempotent resend of the attempted history, then read the oracle.
  auto client = Client::ConnectWithRetry("127.0.0.1", primary.port, retry);
  ASSERT_TRUE(client.ok()) << client.status();
  const int attempted = kCycles * kBatchesPerCycle;
  for (int i = 0; i < attempted; ++i) {
    auto response = client->CallWithRetry(
        [&] {
          Json j = Json::Object();
          j.Set("verb", Json::Str("insert"));
          j.Set("facts", Json::Str(Batch(i)));
          return j;
        }(),
        retry);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->At("ok").boolean) << response->Dump();
  }
  auto primary_dump = client->Dump();
  ASSERT_TRUE(primary_dump.ok()) << primary_dump.status();
  const int64_t final_epoch = primary_dump->IntOr("epoch", 0);
  ASSERT_GT(final_epoch, 0);

  // Each replica: read at the primary's final epoch token (blocks until its
  // pump catches up), require the byte-identical model, and require writes
  // to bounce back toward the primary.
  for (Madd& r : replicas) {
    auto rc = Client::ConnectWithRetry("127.0.0.1", r.port, retry);
    ASSERT_TRUE(rc.ok()) << rc.status();

    auto dump = rc->DumpAtLeast(final_epoch, /*wait_ms=*/30000);
    ASSERT_TRUE(dump.ok()) << dump.status();
    ASSERT_TRUE(dump->At("ok").boolean) << dump->Dump();
    EXPECT_EQ(dump->At("model").str, primary_dump->At("model").str);

    auto stats = rc->Stats();
    ASSERT_TRUE(stats.ok());
    const Json& repl = stats->At("replication");
    EXPECT_EQ(repl.StrOr("role", ""), "replica");
    EXPECT_FALSE(repl.At("broken").boolean) << stats->Dump();
    // The murders were visible: the pump had to reconnect at least once.
    EXPECT_GE(repl.IntOr("reconnects", 0), 1);
    EXPECT_EQ(repl.IntOr("crc_failures", -1), 0);

    auto insert = rc->Insert("arc(n0, n6, 1).");
    ASSERT_TRUE(insert.ok()) << insert.status();
    EXPECT_FALSE(insert->At("ok").boolean);
    EXPECT_EQ(insert->At("error").StrOr("code", ""), "NotPrimary");
    EXPECT_EQ(insert->At("redirect").IntOr("port", 0), primary.port);

    ShutdownClean(&*rc, r.pid);
  }
  ShutdownClean(&*client, primary.pid);
}

}  // namespace
}  // namespace server
}  // namespace mad
