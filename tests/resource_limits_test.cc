// Resource-governed evaluation: deadlines, budgets, cancellation, and the
// certified-partial-model contract. The key property under test is the one
// Proposition 3.3 buys us: for a prefix-sound component, stopping a monotone
// fixpoint iteration early yields a database ⊑-below the least model — every
// present key is real and no cost overshoots its true value — so a tripped
// limit degrades to Completeness::kUnderApproximation instead of an error.
// Greedy evaluation and pseudo-monotonic components void that argument and
// must fail hard with StatusCode::kResourceExhausted.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/engine.h"
#include "util/resource_guard.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace core {
namespace {

using baselines::Graph;
using datalog::Database;
using datalog::Fact;
using datalog::PredicateInfo;
using datalog::Program;
using datalog::Relation;
using datalog::Tuple;
using datalog::Value;

Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

Database GraphEdb(const Program& program, const Graph& g) {
  Database edb;
  EXPECT_TRUE(workloads::AddGraphFacts(program, g, &edb).ok());
  return edb;
}

/// Asserts `partial` ⊑ `full` for `pred_name`: every stored key of the
/// partial relation exists in the full one, and (for cost predicates) the
/// partial cost is ⊑-below the full cost — x ⊑ y iff Join(x, y) == y, which
/// for min-lattices means the partial figure may only *overestimate*.
void ExpectBelowLeastModel(const Program& program, const Database& partial,
                           const Database& full, const char* pred_name) {
  const PredicateInfo* pred = program.FindPredicate(pred_name);
  ASSERT_NE(pred, nullptr);
  const Relation* prel = partial.Find(pred);
  if (prel == nullptr) return;  // vacuously below
  const Relation* frel = full.Find(pred);
  ASSERT_NE(frel, nullptr) << pred_name << " present only in the partial db";
  prel->ForEach([&](const Tuple& key, const Value& cost) {
    const Value* full_cost = frel->Find(key);
    ASSERT_NE(full_cost, nullptr)
        << pred_name << " has a key absent from the least model";
    if (pred->has_cost) {
      EXPECT_EQ(pred->domain->Join(cost, *full_cost), *full_cost)
          << pred_name << " cost is not ⊑-below its least-model value";
    }
  });
}

EvalOptions WithLimits(ResourceLimits limits,
                       Strategy strategy = Strategy::kSemiNaive) {
  EvalOptions options;
  options.strategy = strategy;
  options.limits = std::move(limits);
  return options;
}

TEST(ResourceLimitsTest, GenerousLimitsLeaveResultBitIdentical) {
  Random rng(11);
  Graph g = workloads::RandomGraph(30, 120, {1.0, 9.0}, &rng);
  Program program = MustParse(workloads::kShortestPathProgram);

  Engine unbounded(program);
  auto reference = unbounded.Run(GraphEdb(program, g));
  ASSERT_TRUE(reference.ok()) << reference.status();

  ResourceLimits generous;
  generous.deadline = std::chrono::hours(1);
  generous.max_rounds_per_component = 1'000'000'000;
  generous.max_total_rounds = 1'000'000'000;
  generous.max_derived_tuples = 1'000'000'000'000;
  generous.max_memory_bytes = int64_t{1} << 40;
  generous.cancellation = std::make_shared<CancellationToken>();
  Engine governed(program, WithLimits(generous));
  auto run = governed.Run(GraphEdb(program, g));
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_EQ(run->completeness, Completeness::kLeastModel);
  EXPECT_EQ(run->limit_tripped, LimitKind::kNone);
  EXPECT_EQ(run->tripped_component, -1);
  EXPECT_TRUE(run->stats.reached_fixpoint);
  EXPECT_EQ(run->db.ToString(), reference->db.ToString());
}

TEST(ResourceLimitsTest, ZeroDeadlineDegradesToCertifiedPartial) {
  Random rng(3);
  Graph g = workloads::RandomGraph(20, 60, {1.0, 9.0}, &rng);
  Program program = MustParse(workloads::kShortestPathProgram);

  Engine engine(
      program,
      WithLimits(ResourceLimits::Deadline(std::chrono::seconds(0))));
  auto run = engine.Run(GraphEdb(program, g));
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_EQ(run->completeness, Completeness::kUnderApproximation);
  EXPECT_EQ(run->limit_tripped, LimitKind::kDeadline);
  EXPECT_GE(run->tripped_component, 0);
  EXPECT_FALSE(run->stats.reached_fixpoint);
  EXPECT_NE(run->stats.ToString().find("limit=deadline"), std::string::npos);
  // The EDB survives untouched even when no fixpoint round completed.
  const Relation* arcs = run->db.Find(program.FindPredicate("arc"));
  ASSERT_NE(arcs, nullptr);
  EXPECT_EQ(arcs->size(), static_cast<size_t>(g.num_edges));
}

TEST(ResourceLimitsTest, TupleBudgetYieldsUnderApproximationBelowLeastModel) {
  Random rng(17);
  Graph g = workloads::RandomGraph(40, 200, {1.0, 9.0}, &rng);
  Program program = MustParse(workloads::kShortestPathProgram);

  Engine unbounded(program);
  auto full = unbounded.Run(GraphEdb(program, g));
  ASSERT_TRUE(full.ok()) << full.status();

  ResourceLimits limits;
  limits.max_derived_tuples = 300;
  Engine governed(program, WithLimits(limits));
  auto partial = governed.Run(GraphEdb(program, g));
  ASSERT_TRUE(partial.ok()) << partial.status();

  EXPECT_EQ(partial->completeness, Completeness::kUnderApproximation);
  EXPECT_EQ(partial->limit_tripped, LimitKind::kTupleBudget);
  // Merge-before-charge: the batch that blew the budget is kept, so the
  // partial model is non-trivial (round 0 alone derives one path per arc).
  const Relation* paths = partial->db.Find(program.FindPredicate("path"));
  ASSERT_NE(paths, nullptr);
  EXPECT_GT(paths->size(), 0u);
  // The certification: partial ⊑ least model, per derived predicate.
  ExpectBelowLeastModel(program, partial->db, full->db, "path");
  ExpectBelowLeastModel(program, partial->db, full->db, "s");
}

TEST(ResourceLimitsTest, RoundCapDegradesMidComponent) {
  Random rng(5);
  // A long cycle needs ~n rounds to converge, so a 2-round cap interrupts
  // the recursive component deep inside its fixpoint.
  Graph g = workloads::CycleGraph(30, 3, {1.0, 9.0}, &rng);
  Program program = MustParse(workloads::kShortestPathProgram);

  Engine unbounded(program);
  auto full = unbounded.Run(GraphEdb(program, g));
  ASSERT_TRUE(full.ok()) << full.status();

  ResourceLimits limits;
  limits.max_rounds_per_component = 2;
  Engine governed(program, WithLimits(limits));
  auto partial = governed.Run(GraphEdb(program, g));
  ASSERT_TRUE(partial.ok()) << partial.status();

  EXPECT_EQ(partial->completeness, Completeness::kUnderApproximation);
  EXPECT_EQ(partial->limit_tripped, LimitKind::kRoundCap);
  ExpectBelowLeastModel(program, partial->db, full->db, "path");
  ExpectBelowLeastModel(program, partial->db, full->db, "s");
  // The cap genuinely cut work: the partial s relation is a strict subset.
  const Relation* ps = partial->db.Find(program.FindPredicate("s"));
  const Relation* fs = full->db.Find(program.FindPredicate("s"));
  ASSERT_NE(fs, nullptr);
  EXPECT_LT(ps == nullptr ? 0u : ps->size(), fs->size());
}

TEST(ResourceLimitsTest, MemoryBudgetTripsAtMergeGranularity) {
  Random rng(23);
  Graph g = workloads::RandomGraph(25, 80, {1.0, 9.0}, &rng);
  Program program = MustParse(workloads::kShortestPathProgram);

  ResourceLimits limits;
  limits.max_memory_bytes = 1;  // any merged row exceeds this
  Engine governed(program, WithLimits(limits));
  auto run = governed.Run(GraphEdb(program, g));
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_EQ(run->completeness, Completeness::kUnderApproximation);
  EXPECT_EQ(run->limit_tripped, LimitKind::kMemoryBudget);
  // The EDB is owned by the caller-side accounting, never evicted.
  const Relation* arcs = run->db.Find(program.FindPredicate("arc"));
  ASSERT_NE(arcs, nullptr);
  EXPECT_EQ(arcs->size(), static_cast<size_t>(g.num_edges));
}

TEST(ResourceLimitsTest, CancellationFromAnotherThreadStopsDivergentRun) {
  // arc(b, b, -1) is a negative self-loop: s(b, b) descends forever, so
  // without cancellation this run would only stop at max_iterations. The
  // iteration is still monotone in the min-lattice (costs only move up in
  // ⊑), so cancelling certifies the prefix rather than erroring.
  std::string text = std::string(workloads::kShortestPathProgram) +
                     "arc(a, b, 1).\narc(b, b, -1).\n";
  Program program = MustParse(text);

  ResourceLimits limits;
  limits.cancellation = std::make_shared<CancellationToken>();
  EvalOptions options = WithLimits(limits);
  options.max_iterations = int64_t{1} << 60;  // never the stopping reason
  Engine engine(program, options);

  std::thread canceller([token = limits.cancellation] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    token->Cancel();
  });
  auto run = engine.Run(Database());
  canceller.join();

  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->completeness, Completeness::kUnderApproximation);
  EXPECT_EQ(run->limit_tripped, LimitKind::kCancelled);
  // The run made real progress before the token tripped...
  EXPECT_GT(run->stats.iterations, 0);
  // ...and the surviving costs are all ⊑-below their (transfinite) limits:
  // s(a, b) descends toward -inf, so any finite value is a sound prefix.
  auto s_ab = LookupCost(program, run->db, "s",
                         {Value::Symbol("a"), Value::Symbol("b")});
  ASSERT_TRUE(s_ab.has_value());
  EXPECT_LE(s_ab->AsDouble(), 1.0);
}

TEST(ResourceLimitsTest, LegacyMaxIterationsStaysSoftAndUncertified) {
  // The pre-existing max_iterations knob keeps its exact semantics: OK,
  // reached_fixpoint=false, but no Completeness downgrade and no limit —
  // it is a convergence bound (Example 5.1), not a resource verdict.
  std::string text = std::string(workloads::kShortestPathProgram) +
                     "arc(a, b, 1).\narc(b, b, -1).\n";
  EvalOptions options;
  options.max_iterations = 5;
  auto run = ParseAndRun(text, options);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->result.completeness, Completeness::kLeastModel);
  EXPECT_EQ(run->result.limit_tripped, LimitKind::kNone);
  EXPECT_FALSE(run->result.stats.reached_fixpoint);
}

TEST(ResourceLimitsTest, GreedyTripIsAHardError) {
  Random rng(29);
  Graph g = workloads::RandomGraph(30, 120, {1.0, 9.0}, &rng);
  Program program = MustParse(workloads::kShortestPathProgram);

  ResourceLimits limits;
  limits.max_derived_tuples = 1;
  Engine governed(program, WithLimits(limits, Strategy::kGreedy));
  auto run = governed.Run(GraphEdb(program, g));
  ASSERT_FALSE(run.ok());
  // Greedy settles keys speculatively; its intermediate states are not a
  // prefix of a monotone iteration, so no certification is possible.
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(run.status().message().find("tuple-budget"), std::string::npos)
      << run.status();
}

TEST(ResourceLimitsTest, PseudoMonotonicComponentTripsHard) {
  // Example 4.4's AND aggregate over the default-value CDB predicate `t` is
  // pseudo-monotonic: sound at the fixpoint (fixed inner cardinality) but
  // not at interrupted prefixes, so its component is monotonic yet NOT
  // prefix-sound and a mid-component trip must not certify anything.
  std::string text = std::string(workloads::kCircuitProgram) + R"(
input(w1, true).
gate(g1, and). connect(g1, w1).
gate(g2, and). connect(g2, g1).
gate(g3, and). connect(g3, g2).
)";
  Program program = MustParse(text);

  // Sanity: unbounded evaluation reaches the chain's fixpoint.
  Engine unbounded(program);
  auto full = unbounded.Run(Database());
  ASSERT_TRUE(full.ok()) << full.status();
  auto t_g3 = LookupCost(program, full->db, "t", {Value::Symbol("g3")});
  ASSERT_TRUE(t_g3.has_value());
  EXPECT_EQ(t_g3->AsDouble(), 1.0);
  // The checker records the gap between the two verdicts.
  bool saw_unsound_prefix = false;
  for (const auto& c : full->check.components) {
    if (c.monotonic && !c.prefix_sound) saw_unsound_prefix = true;
  }
  EXPECT_TRUE(saw_unsound_prefix);

  ResourceLimits limits;
  limits.max_rounds_per_component = 1;  // the t-chain needs several rounds
  Engine governed(program, WithLimits(limits));
  auto run = governed.Run(Database());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceLimitsTest, DeadlineInterruptsASingleHugeRule) {
  // One rule whose single bottom-up round enumerates tens of millions of
  // bindings: only the executor's mid-rule poll can stop it anywhere near
  // the deadline. The partial buffer it abandons is still merged — any
  // subset of one T_P application's derivations is ⊑-sound.
  Program program = MustParse(R"(
.decl e(x, y)
.decl q(x)
q(X) :- e(X, Y), e(Y, Z), e(Z, W).
)");
  const PredicateInfo* e = program.FindPredicate("e");
  ASSERT_NE(e, nullptr);
  Database edb;
  Random rng(41);
  for (int i = 0; i < 20000; ++i) {
    Fact f;
    f.pred = e;
    f.key = {Value::Symbol(Graph::NodeName(
                 static_cast<int>(rng.Uniform(0, 399)))),
             Value::Symbol(Graph::NodeName(
                 static_cast<int>(rng.Uniform(0, 399))))};
    ASSERT_TRUE(edb.AddFact(f).ok());
  }

  Engine engine(
      program,
      WithLimits(ResourceLimits::Deadline(std::chrono::milliseconds(25))));
  auto run = engine.Run(std::move(edb));
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->completeness, Completeness::kUnderApproximation);
  EXPECT_EQ(run->limit_tripped, LimitKind::kDeadline);
  // ~50M three-hop bindings exist; stopping at the deadline means only a
  // fraction were enumerated. Without the mid-rule poll the whole round
  // would have run to completion and derived them all.
  EXPECT_LT(run->stats.derivations, 20'000'000);
  EXPECT_GT(run->stats.subgoal_evals, 0);
}

TEST(ResourceLimitsTest, UpdateHonorsLimitsAndDegradesGracefully) {
  Random rng(2);
  Graph g = workloads::RandomGraph(20, 50, {1.0, 9.0}, &rng);
  Program program = MustParse(workloads::kShortestPathProgram);

  Engine unbounded(program);
  auto governed_result = unbounded.Run(GraphEdb(program, g));
  ASSERT_TRUE(governed_result.ok());

  // Post-insert reference model, computed from scratch without limits.
  Graph g2 = g;
  g2.AddEdge(0, 19, 0.5);
  auto full = unbounded.Run(GraphEdb(program, g2));
  ASSERT_TRUE(full.ok());

  Fact shortcut;
  shortcut.pred = program.FindPredicate("arc");
  shortcut.key = {Value::Symbol(Graph::NodeName(0)),
                  Value::Symbol(Graph::NodeName(19))};
  shortcut.cost = Value::Real(0.5);

  Engine governed(
      program,
      WithLimits(ResourceLimits::Deadline(std::chrono::seconds(0))));
  auto ustats = governed.Update(&governed_result.value(), {shortcut});
  ASSERT_TRUE(ustats.ok()) << ustats.status();

  // Update safety implies full input-monotonicity, so the trip always
  // degrades: the old model plus the partially propagated delta is ⊑-below
  // the post-insert least model.
  EXPECT_EQ(ustats->limit_tripped, LimitKind::kDeadline);
  EXPECT_FALSE(ustats->reached_fixpoint);
  EXPECT_EQ(governed_result->completeness,
            Completeness::kUnderApproximation);
  EXPECT_EQ(governed_result->limit_tripped, LimitKind::kDeadline);
  ExpectBelowLeastModel(program, governed_result->db, full->db, "path");
  ExpectBelowLeastModel(program, governed_result->db, full->db, "s");
  // The inserted fact itself must be present (EDB inserts precede rounds).
  auto arc = LookupCost(program, governed_result->db, "arc", shortcut.key);
  ASSERT_TRUE(arc.has_value());
  EXPECT_EQ(arc->AsDouble(), 0.5);
}

TEST(ResourceLimitsTest, UpdateWithGenerousLimitsStaysExact) {
  Random rng(2);
  Graph g = workloads::RandomGraph(20, 50, {1.0, 9.0}, &rng);
  Program program = MustParse(workloads::kShortestPathProgram);

  ResourceLimits generous;
  generous.deadline = std::chrono::hours(1);
  generous.max_derived_tuples = 1'000'000'000;
  Engine governed(program, WithLimits(generous));
  auto result = governed.Run(GraphEdb(program, g));
  ASSERT_TRUE(result.ok());

  Fact shortcut;
  shortcut.pred = program.FindPredicate("arc");
  shortcut.key = {Value::Symbol(Graph::NodeName(0)),
                  Value::Symbol(Graph::NodeName(19))};
  shortcut.cost = Value::Real(0.5);
  auto ustats = governed.Update(&result.value(), {shortcut});
  ASSERT_TRUE(ustats.ok()) << ustats.status();
  EXPECT_EQ(result->completeness, Completeness::kLeastModel);
  EXPECT_EQ(ustats->limit_tripped, LimitKind::kNone);

  Graph g2 = g;
  g2.AddEdge(0, 19, 0.5);
  Engine unbounded(program);
  auto full = unbounded.Run(GraphEdb(program, g2));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(result->db.ToString(), full->db.ToString());
}

TEST(ResourceLimitsTest, CompletenessNamesAreStable) {
  EXPECT_STREQ(CompletenessName(Completeness::kLeastModel), "least-model");
  EXPECT_STREQ(CompletenessName(Completeness::kUnderApproximation),
               "under-approximation");
}

}  // namespace
}  // namespace core
}  // namespace mad
