// Experiment S6.2: bottom-up evaluation — naive and semi-naive reach the
// same least fixpoint, and semi-naive does asymptotically less work.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace {

using baselines::Graph;
using core::EvalOptions;
using core::EvalStats;
using core::Strategy;

struct RunOutput {
  std::string db;
  EvalStats stats;
};

RunOutput RunGraph(const Graph& g, Strategy strategy) {
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  EXPECT_TRUE(program.ok());
  datalog::Database edb;
  EXPECT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  EvalOptions options;
  options.strategy = strategy;
  core::Engine engine(*program, options);
  auto result = engine.Run(std::move(edb));
  EXPECT_TRUE(result.ok()) << result.status();
  return {result->db.ToString(), result->stats};
}

class SemiNaiveSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(SemiNaiveSeedTest, IdenticalLeastModels) {
  Random rng(GetParam());
  Graph g = workloads::RandomGraph(20, 60, {1.0, 8.0}, &rng);
  RunOutput naive = RunGraph(g, Strategy::kNaive);
  RunOutput semi = RunGraph(g, Strategy::kSemiNaive);
  EXPECT_EQ(naive.db, semi.db);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiNaiveSeedTest, ::testing::Range(1, 6));

TEST(SemiNaiveTest, ChainGraphShowsAsymptoticGap) {
  // On an n-chain, naive evaluation re-derives every path each round
  // (Θ(n) rounds × Θ(n²) derivations); semi-naive touches each changed key
  // once per producing round. The *derivation* counters must reflect that.
  Random rng(3);
  Graph chain = workloads::LayeredDag(30, 1, 1, {1.0, 1.0}, &rng);
  RunOutput naive = RunGraph(chain, Strategy::kNaive);
  RunOutput semi = RunGraph(chain, Strategy::kSemiNaive);
  EXPECT_EQ(naive.db, semi.db);
  EXPECT_GT(naive.stats.derivations, 4 * semi.stats.derivations)
      << "naive: " << naive.stats.ToString()
      << "\nsemi:  " << semi.stats.ToString();
}

TEST(SemiNaiveTest, RoundCountsComparable) {
  // Both strategies need Θ(diameter) rounds; semi-naive must not need more
  // than naive + 1 (its final empty-delta round).
  Random rng(5);
  Graph g = workloads::CycleGraph(12, 6, {1.0, 4.0}, &rng);
  RunOutput naive = RunGraph(g, Strategy::kNaive);
  RunOutput semi = RunGraph(g, Strategy::kSemiNaive);
  EXPECT_LE(semi.stats.iterations, naive.stats.iterations + 1);
}

TEST(SemiNaiveTest, TransitiveClosureAgreesAndSaves) {
  std::string text = R"(
.decl e(x, y)
.decl tc(x, y)
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), e(Z, Y).
)";
  std::string facts;
  for (int i = 0; i < 40; ++i) {
    facts += "e(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
             ").\n";
  }
  EvalOptions naive_opts;
  naive_opts.strategy = Strategy::kNaive;
  auto naive = core::ParseAndRun(text + facts, naive_opts);
  auto semi = core::ParseAndRun(text + facts);
  ASSERT_TRUE(naive.ok() && semi.ok());
  EXPECT_EQ(naive->result.db.ToString(), semi->result.db.ToString());
  EXPECT_GT(naive->result.stats.derivations,
            3 * semi->result.stats.derivations);
}

TEST(SemiNaiveTest, AggregateGroupsRecomputedOnlyWhenTouched) {
  // Company control: semi-naive re-aggregates only groups reachable from
  // changed cv rows. The subgoal-evaluation counter must be far below
  // naive's.
  Random rng(8);
  auto net = workloads::RandomOwnership(25, 3, 0.6, &rng);
  auto program = datalog::ParseProgram(workloads::kCompanyControlProgram);
  ASSERT_TRUE(program.ok());

  auto run = [&](Strategy s) {
    datalog::Database edb;
    EXPECT_TRUE(workloads::AddOwnershipFacts(*program, net, &edb).ok());
    EvalOptions options;
    options.strategy = s;
    core::Engine engine(*program, options);
    auto result = engine.Run(std::move(edb));
    EXPECT_TRUE(result.ok()) << result.status();
    return std::make_pair(result->db.ToString(), result->stats);
  };
  auto [naive_db, naive_stats] = run(Strategy::kNaive);
  auto [semi_db, semi_stats] = run(Strategy::kSemiNaive);
  EXPECT_EQ(naive_db, semi_db);
  EXPECT_LT(semi_stats.derivations, naive_stats.derivations);
}

}  // namespace
}  // namespace mad
