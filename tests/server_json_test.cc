// Schema checks for the hand-emitted server JSON, decoded with the
// *independent* tests/json_lite.h reader (the emitter must never be its own
// referee). Covers the Json emitter/parser round trip, the Value <-> JSON
// mapping, ResultToJson (the exact document `mondl --format=json` prints),
// and full wire responses.

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "json_lite.h"
#include "server/json.h"
#include "server/result_json.h"
#include "server/state.h"
#include "workloads/programs.h"

namespace mad {
namespace server {
namespace {

using testing::JsonValue;

std::optional<JsonValue> Independent(const Json& j) {
  return mad::testing::ParseJson(j.Dump());
}

/// The workload program ships no facts; add a small EDB so the emitted
/// documents have actual rows to check.
std::string ProgramWithFacts() {
  return std::string(workloads::kShortestPathProgram) +
         "\narc(a, b, 1).\narc(b, c, 2).\narc(a, c, 9).\n";
}

TEST(ServerJsonTest, DumpSurvivesTheIndependentDecoder) {
  Json j = Json::Object();
  j.Set("int", Json::Int(-42));
  j.Set("double", Json::Double(2.5));
  j.Set("bool", Json::Bool(true));
  j.Set("null", Json::Null());
  j.Set("escape", Json::Str("line\nbreak \"quoted\" back\\slash"));
  Json arr = Json::Array();
  arr.Push(Json::Int(1));
  arr.Push(Json::Str("two"));
  j.Set("arr", std::move(arr));

  auto parsed = Independent(j);
  ASSERT_TRUE(parsed.has_value()) << j.Dump();
  EXPECT_DOUBLE_EQ(parsed->At("int").number, -42);
  EXPECT_DOUBLE_EQ(parsed->At("double").number, 2.5);
  EXPECT_TRUE(parsed->At("bool").boolean);
  EXPECT_EQ(parsed->At("null").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(parsed->At("escape").str, "line\nbreak \"quoted\" back\\slash");
  ASSERT_EQ(parsed->At("arr").arr.size(), 2u);
  EXPECT_EQ(parsed->At("arr").arr[1].str, "two");
}

TEST(ServerJsonTest, OwnParserRoundTripsPreservingIntness) {
  const char* text =
      R"({"a": 3, "b": 3.0, "c": [true, false, null, "s"], "d": {"n": -7}})";
  auto j = ParseJson(text);
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(j->At("a").is_int());
  EXPECT_FALSE(j->At("b").is_int());  // fractional lexeme stays a double
  EXPECT_TRUE(j->At("b").is_number());
  EXPECT_EQ(j->At("d").At("n").integer, -7);

  // Round trip through Dump and the independent reader.
  auto again = mad::testing::ParseJson(j->Dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_DOUBLE_EQ(again->At("a").number, 3);
  EXPECT_DOUBLE_EQ(again->At("d").At("n").number, -7);
}

TEST(ServerJsonTest, ParserRejectsGarbage) {
  EXPECT_FALSE(ParseJson("{").has_value());
  EXPECT_FALSE(ParseJson("{\"a\": }").has_value());
  EXPECT_FALSE(ParseJson("[1,]").has_value());
  EXPECT_FALSE(ParseJson("{} trailing").has_value());
  // Depth bomb: must fail cleanly, not blow the stack.
  std::string bomb(10000, '[');
  EXPECT_FALSE(ParseJson(bomb).has_value());
}

TEST(ServerJsonTest, ValueRoundTrip) {
  using datalog::Value;
  for (const Value& v : {Value::Symbol("abc"), Value::Int(7),
                         Value::Real(1.5), Value::Bool(true)}) {
    auto back = JsonToValue(ValueToJson(v));
    ASSERT_TRUE(back.has_value()) << v.ToString();
    EXPECT_EQ(*back, v) << v.ToString();
  }
}

TEST(ServerJsonTest, ResultToJsonSchema) {
  // The exact document mondl --format=json emits.
  auto run = core::ParseAndRun(ProgramWithFacts());
  ASSERT_TRUE(run.ok()) << run.status();
  Json j = ResultToJson(*run->program, run->result);

  auto doc = Independent(j);
  ASSERT_TRUE(doc.has_value()) << j.Dump();
  EXPECT_EQ(doc->At("completeness").str, "least-model");
  EXPECT_EQ(doc->At("limit_tripped").str, "none");
  ASSERT_TRUE(doc->At("stats").is_object());
  const JsonValue& stats = doc->At("stats");
  for (const char* field :
       {"iterations", "rule_evaluations", "derivations", "merges_new",
        "merges_increased", "subgoal_evals", "index_reuses",
        "greedy_violations", "wall_seconds"}) {
    EXPECT_TRUE(stats.At(field).is_number()) << field;
  }
  EXPECT_EQ(stats.At("reached_fixpoint").kind, JsonValue::Kind::kBool);

  ASSERT_TRUE(doc->At("relations").is_array());
  ASSERT_FALSE(doc->At("relations").arr.empty());
  for (const JsonValue& rel : doc->At("relations").arr) {
    EXPECT_TRUE(rel.At("pred").is_string());
    EXPECT_TRUE(rel.At("arity").is_number());
    ASSERT_TRUE(rel.At("rows").is_array());
    for (const JsonValue& row : rel.At("rows").arr) {
      ASSERT_TRUE(row.At("key").is_array());
      EXPECT_EQ(row.At("key").arr.size(),
                static_cast<size_t>(rel.At("arity").number) -
                    (rel.At("has_cost").boolean ? 1 : 0));
      if (rel.At("has_cost").boolean) EXPECT_TRUE(row.Has("cost"));
    }
  }
}

TEST(ServerJsonTest, WireResponsesAreWellFormed) {
  auto state = ServerState::Load(ProgramWithFacts(), {});
  ASSERT_TRUE(state.ok()) << state.status();

  for (const char* verb : {"ping", "dump", "stats"}) {
    Json req = Json::Object();
    req.Set("verb", Json::Str(verb));
    Json resp = (*state)->Handle(req);
    auto doc = Independent(resp);
    ASSERT_TRUE(doc.has_value()) << verb << ": " << resp.Dump();
    EXPECT_TRUE(doc->At("ok").boolean) << verb;
    EXPECT_EQ(doc->At("verb").str, verb);
    EXPECT_TRUE(doc->At("epoch").is_number()) << verb;
  }

  // Stats carries the per-verb latency map with percentile fields.
  Json req = Json::Object();
  req.Set("verb", Json::Str("stats"));
  Json resp = (*state)->Handle(req);
  auto doc = Independent(resp);
  ASSERT_TRUE(doc.has_value());
  const JsonValue& verbs = doc->At("verbs");
  ASSERT_TRUE(verbs.is_object());
  ASSERT_TRUE(verbs.Has("stats"));
  for (const char* field : {"count", "mean_us", "p50_us", "p95_us", "p99_us"}) {
    EXPECT_TRUE(verbs.At("stats").At(field).is_number()) << field;
  }
}

}  // namespace
}  // namespace server
}  // namespace mad
