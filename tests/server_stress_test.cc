// The serving layer's acceptance bar: many concurrent loopback clients read
// while a single writer streams inserts, and *every* response must be the
// least model of some serial prefix of the insert stream — snapshot
// isolation means torn reads are impossible, not merely unlikely. The writer
// records the authoritative model per epoch (it is the only mutator, so the
// snapshot cannot move between its insert acknowledgment and its own dump);
// readers' responses are checked against that map afterwards.
//
// Also exercised: graceful drain with readers mid-flight (shutdown closes
// the listener and half-closes connections; accepted requests still get
// their responses), under ThreadSanitizer in the tsan preset.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server/state.h"
#include "util/string_util.h"

namespace mad {
namespace server {
namespace {

constexpr const char* kShortestPath = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(n0, n1, 1).
)";

TEST(ServerStressTest, ConcurrentReadersNeverSeeTornState) {
  constexpr int kReaders = 32;
  constexpr int kInserts = 24;
  constexpr int kReadsPerReader = 8;

  auto state = ServerState::Load(kShortestPath, {});
  ASSERT_TRUE(state.ok()) << state.status();
  auto srv = Server::Start(std::move(*state), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  Server& server = **srv;

  // The single writer: one insert per epoch, then its own dump — which must
  // come back at exactly the epoch just acknowledged, since nobody else
  // writes. That dump is the authoritative "least model of the serial
  // prefix ending at epoch k".
  std::mutex expected_mu;
  std::map<int64_t, std::string> expected;
  std::atomic<bool> writer_failed{false};
  std::thread writer([&] {
    auto c = Client::Connect("127.0.0.1", server.port());
    if (!c.ok()) {
      writer_failed.store(true);
      return;
    }
    {
      // Epoch 0 baseline.
      auto dump = c->Dump();
      if (!dump.ok() || dump->IntOr("epoch", -1) != 0) {
        writer_failed.store(true);
        return;
      }
      std::lock_guard<std::mutex> lk(expected_mu);
      expected[0] = dump->At("model").str;
    }
    for (int i = 0; i < kInserts; ++i) {
      // A growing chain with shortcuts: every insert changes the model.
      std::string facts =
          StrPrintf("arc(n%d, n%d, 1). arc(n0, n%d, %d).", i + 1, i + 2,
                    i + 2, 2 * i + 3);
      auto ins = c->Insert(facts);
      if (!ins.ok() || !ins->At("ok").boolean) {
        writer_failed.store(true);
        return;
      }
      const int64_t epoch = ins->IntOr("epoch", -1);
      auto dump = c->Dump();
      if (!dump.ok() || dump->IntOr("epoch", -2) != epoch) {
        writer_failed.store(true);
        return;
      }
      std::lock_guard<std::mutex> lk(expected_mu);
      expected[epoch] = dump->At("model").str;
    }
  });

  // Readers: hammer dump + query, recording every (epoch, model) observed
  // and asserting per-connection epoch monotonicity (snapshots only move
  // forward).
  struct Observation {
    int64_t epoch;
    std::string model;
  };
  std::vector<std::vector<Observation>> seen(kReaders);
  std::atomic<int> reader_errors{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      auto c = Client::Connect("127.0.0.1", server.port());
      if (!c.ok()) {
        reader_errors.fetch_add(1);
        return;
      }
      int64_t last_epoch = -1;
      for (int i = 0; i < kReadsPerReader; ++i) {
        auto dump = c->Dump();
        if (!dump.ok() || !dump->At("ok").boolean) {
          reader_errors.fetch_add(1);
          return;
        }
        const int64_t epoch = dump->IntOr("epoch", -1);
        if (epoch < last_epoch) {
          reader_errors.fetch_add(1);
          return;
        }
        last_epoch = epoch;
        seen[r].push_back({epoch, dump->At("model").str});

        // Point query against the same pinned-snapshot machinery.
        Json q = Json::Object();
        q.Set("verb", Json::Str("query"));
        q.Set("pred", Json::Str("s"));
        auto qr = c->Call(q);
        if (!qr.ok() || !qr->At("ok").boolean) {
          reader_errors.fetch_add(1);
          return;
        }
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  ASSERT_FALSE(writer_failed.load());
  EXPECT_EQ(reader_errors.load(), 0);

  // The core assertion: every observed model is byte-identical to the
  // writer's model for that epoch — i.e. the least model of a serial prefix.
  int checked = 0;
  for (int r = 0; r < kReaders; ++r) {
    for (const Observation& ob : seen[r]) {
      auto it = expected.find(ob.epoch);
      ASSERT_NE(it, expected.end())
          << "reader saw epoch " << ob.epoch << " the writer never published";
      EXPECT_EQ(ob.model, it->second)
          << "torn read at epoch " << ob.epoch << " (reader " << r << ")";
      ++checked;
    }
  }
  EXPECT_GE(checked, kReaders * kReadsPerReader / 2);

  server.RequestShutdown();
  server.Wait();
}

TEST(ServerStressTest, GracefulShutdownDrainsInFlightRequests) {
  auto state = ServerState::Load(kShortestPath, {});
  ASSERT_TRUE(state.ok()) << state.status();
  auto srv = Server::Start(std::move(*state), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  Server& server = **srv;

  constexpr int kReaders = 8;
  std::atomic<int> malformed{0};
  std::atomic<int> completed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto c = Client::Connect("127.0.0.1", server.port());
      if (!c.ok()) return;
      while (!stop.load(std::memory_order_acquire)) {
        auto dump = c->Dump();
        if (!dump.ok()) {
          // Transport closed by the drain — acceptable, but only as a
          // *clean* close between frames, never a torn frame.
          if (dump.status().message().find("mid-frame") != std::string::npos) {
            malformed.fetch_add(1);
          }
          return;
        }
        if (!dump->At("ok").boolean || dump->At("model").str.empty()) {
          malformed.fetch_add(1);
          return;
        }
        completed.fetch_add(1);
      }
    });
  }

  // Let the readers get going, then drain while they are mid-stream.
  while (completed.load() < kReaders) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.RequestShutdown();
  server.Wait();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(malformed.load(), 0)
      << "a drained connection saw a torn or malformed response";
  EXPECT_GE(completed.load(), kReaders);
}

}  // namespace
}  // namespace server
}  // namespace mad
