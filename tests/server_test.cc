// madd serving layer smoke tests: ServerState request handling in-process,
// plus the full loopback TCP stack (Server + Client) — wire framing, every
// verb, error paths, per-request limits, and graceful shutdown.

#include <gtest/gtest.h>

#include <string>

#include "server/client.h"
#include "server/server.h"
#include "server/state.h"

namespace mad {
namespace server {
namespace {

constexpr const char* kShortestPath = R"(
.decl arc(from, to, c: min_real)
.decl path(from, mid, to, c: min_real)
.decl s(from, to, c: min_real)
.constraint arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C) :- C =r min D : path(X, Z, Y, D).

arc(a, b, 1).
arc(b, c, 2).
arc(a, c, 9).
)";

std::unique_ptr<ServerState> MustLoad(const char* text) {
  auto state = ServerState::Load(text, {});
  EXPECT_TRUE(state.ok()) << state.status();
  return std::move(state).value();
}

Json Request(const char* verb) {
  Json j = Json::Object();
  j.Set("verb", Json::Str(verb));
  return j;
}

TEST(ServerStateTest, LoadPublishesEpochZero) {
  auto state = MustLoad(kShortestPath);
  EXPECT_EQ(state->epoch(), 0);
  auto snap = state->Pin();
  EXPECT_EQ(snap->completeness, core::Completeness::kLeastModel);
  EXPECT_GT(snap->db.TotalRows(), 0u);
}

TEST(ServerStateTest, LoadRejectsInvalidPrograms) {
  // Range-restriction violation: the check-and-certify pipeline must refuse
  // to serve the program at all.
  auto state = ServerState::Load(R"(
.decl e(x)
.decl g(x)
g(X) :- e(Y).
)",
                                 {});
  ASSERT_FALSE(state.ok());

  auto parse_error = ServerState::Load(".decl e(", {});
  ASSERT_FALSE(parse_error.ok());
}

TEST(ServerStateTest, PingQueryDumpStats) {
  auto state = MustLoad(kShortestPath);

  Json pong = state->Handle(Request("ping"));
  EXPECT_TRUE(pong.At("ok").boolean);
  EXPECT_EQ(pong.IntOr("epoch", -1), 0);

  // Point lookup: the shortest a->c path goes through b (1 + 2 = 3).
  Json q = Request("query");
  q.Set("pred", Json::Str("s"));
  Json key = Json::Array();
  key.Push(Json::Str("a"));
  key.Push(Json::Str("c"));
  q.Set("key", std::move(key));
  Json qr = state->Handle(q);
  ASSERT_TRUE(qr.At("ok").boolean) << qr.Dump();
  ASSERT_EQ(qr.IntOr("row_count", -1), 1);
  EXPECT_DOUBLE_EQ(qr.At("rows").arr[0].At("cost").AsDouble(), 3.0);
  EXPECT_TRUE(qr.At("complete").boolean);

  // Partial binding: all paths out of a.
  Json q2 = Request("query");
  q2.Set("pred", Json::Str("s"));
  Json key2 = Json::Array();
  key2.Push(Json::Str("a"));
  key2.Push(Json::Null());
  q2.Set("key", std::move(key2));
  Json q2r = state->Handle(q2);
  ASSERT_TRUE(q2r.At("ok").boolean) << q2r.Dump();
  EXPECT_EQ(q2r.IntOr("row_count", -1), 2);  // a->b, a->c

  // Full scan (no key at all).
  Json q3 = Request("query");
  q3.Set("pred", Json::Str("s"));
  Json q3r = state->Handle(q3);
  ASSERT_TRUE(q3r.At("ok").boolean) << q3r.Dump();
  EXPECT_EQ(q3r.IntOr("row_count", -1), 3);  // a->b, b->c, a->c

  Json dump = state->Handle(Request("dump"));
  ASSERT_TRUE(dump.At("ok").boolean);
  EXPECT_EQ(dump.At("model").str, state->Pin()->db.ToString());

  Json stats = state->Handle(Request("stats"));
  ASSERT_TRUE(stats.At("ok").boolean);
  EXPECT_EQ(stats.At("completeness").str, "least-model");
  EXPECT_GT(stats.At("verbs").obj.size(), 0u);
}

TEST(ServerStateTest, InsertAdvancesEpochAndModel) {
  auto state = MustLoad(kShortestPath);
  Json ins = Request("insert");
  ins.Set("facts", Json::Str("arc(c, d, 1)."));
  Json r = state->Handle(ins);
  ASSERT_TRUE(r.At("ok").boolean) << r.Dump();
  EXPECT_EQ(r.IntOr("epoch", -1), 1);
  EXPECT_EQ(r.IntOr("facts_parsed", -1), 1);

  Json q = Request("query");
  q.Set("pred", Json::Str("s"));
  Json key = Json::Array();
  key.Push(Json::Str("a"));
  key.Push(Json::Str("d"));
  q.Set("key", std::move(key));
  Json qr = state->Handle(q);
  ASSERT_EQ(qr.IntOr("row_count", -1), 1) << qr.Dump();
  EXPECT_DOUBLE_EQ(qr.At("rows").arr[0].At("cost").AsDouble(), 4.0);
  EXPECT_EQ(qr.IntOr("epoch", -1), 1);
}

TEST(ServerStateTest, DemandQueryAnswersPointLookups) {
  auto state = MustLoad(kShortestPath);

  // Point query via the atom form: shortest paths out of a.
  Json q = Request("query");
  q.Set("atom", Json::Str("s(a, Y, C)"));
  Json r = state->Handle(q);
  ASSERT_TRUE(r.At("ok").boolean) << r.Dump();
  EXPECT_EQ(r.At("pred").str, "s");
  EXPECT_EQ(r.At("adornment").str, "bf");
  EXPECT_TRUE(r.At("used_demand").boolean) << r.Dump();
  EXPECT_EQ(r.IntOr("row_count", -1), 2);  // a->b (1), a->c (3)
  EXPECT_EQ(r.At("completeness").str, "least-model");

  // The demanded slice must agree with the scan form of the same lookup.
  Json scan = Request("query");
  scan.Set("pred", Json::Str("s"));
  Json key = Json::Array();
  key.Push(Json::Str("a"));
  key.Push(Json::Null());
  scan.Set("key", std::move(key));
  Json sr = state->Handle(scan);
  ASSERT_TRUE(sr.At("ok").boolean);
  EXPECT_EQ(sr.IntOr("row_count", -1), r.IntOr("row_count", -2));

  // Explicit modes: "full" is the oracle, "demand" must not bail out here.
  for (const char* mode : {"demand", "full"}) {
    Json m = Request("query");
    m.Set("atom", Json::Str("s(a, Y, C)"));
    m.Set("mode", Json::Str(mode));
    Json mr = state->Handle(m);
    ASSERT_TRUE(mr.At("ok").boolean) << mode << ": " << mr.Dump();
    EXPECT_EQ(mr.IntOr("row_count", -1), 2) << mode;
  }

  // A bound cost column widens: keys stay bound, cost is post-filtered.
  Json cost = Request("query");
  cost.Set("atom", Json::Str("s(a, c, 3.0)"));
  Json cr = state->Handle(cost);
  ASSERT_TRUE(cr.At("ok").boolean) << cr.Dump();
  EXPECT_TRUE(cr.At("cost_widened").boolean) << cr.Dump();
  EXPECT_EQ(cr.IntOr("row_count", -1), 1);
  EXPECT_DOUBLE_EQ(cr.At("rows").arr[0].At("cost").AsDouble(), 3.0);
}

TEST(ServerStateTest, DemandQueryMemoizesPerSnapshot) {
  auto state = MustLoad(kShortestPath);
  Json q = Request("query");
  q.Set("atom", Json::Str("s(a, Y, C)"));

  Json first = state->Handle(q);
  ASSERT_TRUE(first.At("ok").boolean) << first.Dump();
  EXPECT_TRUE(first.At("memo_hit").is_null());

  Json second = state->Handle(q);
  ASSERT_TRUE(second.At("ok").boolean);
  EXPECT_TRUE(second.At("memo_hit").boolean) << second.Dump();
  EXPECT_EQ(second.IntOr("row_count", -1), first.IntOr("row_count", -2));

  // An insert publishes a new epoch; the memo must invalidate wholesale.
  Json ins = Request("insert");
  ins.Set("facts", Json::Str("arc(a, d, 1)."));
  ASSERT_TRUE(state->Handle(ins).At("ok").boolean);

  Json third = state->Handle(q);
  ASSERT_TRUE(third.At("ok").boolean) << third.Dump();
  EXPECT_TRUE(third.At("memo_hit").is_null());
  EXPECT_EQ(third.IntOr("row_count", -1), 3);  // a->b, a->c, a->d
  EXPECT_EQ(third.IntOr("epoch", -1), 1);

  // Requests with per-call limits bypass the memo entirely.
  Json lim = Request("query");
  lim.Set("atom", Json::Str("s(a, Y, C)"));
  Json limits = Json::Object();
  limits.Set("deadline_ms", Json::Int(60000));
  lim.Set("limits", std::move(limits));
  Json lr = state->Handle(lim);
  ASSERT_TRUE(lr.At("ok").boolean);
  EXPECT_TRUE(lr.At("memo_hit").is_null());
  Json lr2 = state->Handle(lim);
  ASSERT_TRUE(lr2.At("ok").boolean);
  EXPECT_TRUE(lr2.At("memo_hit").is_null());
}

TEST(ServerStateTest, DemandQueryErrorsAreResponses) {
  auto state = MustLoad(kShortestPath);

  Json bad_atom = Request("query");
  bad_atom.Set("atom", Json::Str("s(a, Y"));
  EXPECT_FALSE(state->Handle(bad_atom).At("ok").boolean);

  Json undeclared = Request("query");
  undeclared.Set("atom", Json::Str("nope(X)"));
  EXPECT_FALSE(state->Handle(undeclared).At("ok").boolean);

  Json bad_mode = Request("query");
  bad_mode.Set("atom", Json::Str("s(a, Y, C)"));
  bad_mode.Set("mode", Json::Str("psychic"));
  Json bm = state->Handle(bad_mode);
  EXPECT_FALSE(bm.At("ok").boolean);
  EXPECT_EQ(bm.At("error").At("code").str, "InvalidArgument");
}

TEST(ServerStateTest, ErrorsAreResponsesNotCrashes) {
  auto state = MustLoad(kShortestPath);

  Json unknown = state->Handle(Request("frobnicate"));
  EXPECT_FALSE(unknown.At("ok").boolean);
  EXPECT_EQ(unknown.At("error").At("code").str, "InvalidArgument");

  Json q = Request("query");
  q.Set("pred", Json::Str("nonexistent"));
  Json qr = state->Handle(q);
  EXPECT_FALSE(qr.At("ok").boolean);
  EXPECT_EQ(qr.At("error").At("code").str, "NotFound");

  Json arity = Request("query");
  arity.Set("pred", Json::Str("s"));
  Json key = Json::Array();
  key.Push(Json::Str("a"));
  arity.Set("key", std::move(key));
  Json ar = state->Handle(arity);
  EXPECT_FALSE(ar.At("ok").boolean);

  Json bad = Request("insert");
  bad.Set("facts", Json::Str("arc(a, b"));
  Json br = state->Handle(bad);
  EXPECT_FALSE(br.At("ok").boolean);
  // A rejected parse must not advance the epoch.
  EXPECT_EQ(state->epoch(), 0);
}

TEST(ServerStateTest, QueryMaxRowsTruncatesButStaysSound) {
  auto state = MustLoad(kShortestPath);
  Json q = Request("query");
  q.Set("pred", Json::Str("s"));
  Json limits = Json::Object();
  limits.Set("max_rows", Json::Int(1));
  q.Set("limits", std::move(limits));
  Json r = state->Handle(q);
  ASSERT_TRUE(r.At("ok").boolean) << r.Dump();
  EXPECT_EQ(r.IntOr("row_count", -1), 1);
  EXPECT_FALSE(r.At("complete").boolean);
}

TEST(ServerStateTest, InsertRefusedForUpdateUnsafePrograms) {
  // Negation is never insert-maintainable; the server must refuse up front
  // instead of poisoning itself.
  auto state = MustLoad(R"(
.decl e(x)
.decl f(x)
.decl g(x)
g(X) :- e(X), !f(X).
e(a).
)");
  Json ins = Request("insert");
  ins.Set("facts", Json::Str("e(b)."));
  Json r = state->Handle(ins);
  EXPECT_FALSE(r.At("ok").boolean);
  EXPECT_EQ(state->epoch(), 0);
  // Reads still work.
  EXPECT_TRUE(state->Handle(Request("dump")).At("ok").boolean);
}

// ---------------------------------------------------------------------------
// Full loopback TCP stack.
// ---------------------------------------------------------------------------

TEST(ServerTest, EndToEndOverLoopback) {
  auto srv = Server::Start(MustLoad(kShortestPath), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  Server& server = **srv;
  ASSERT_GT(server.port(), 0);

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();

  auto pong = client->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->At("ok").boolean);

  auto ins = client->Insert("arc(c, d, 1).");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_TRUE(ins->At("ok").boolean) << ins->Dump();
  EXPECT_EQ(ins->IntOr("epoch", -1), 1);

  auto dump = client->Dump();
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump->At("model").str.find("s(a, d, 4)"), std::string::npos)
      << dump->At("model").str;

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->At("ok").boolean);

  // Shutdown verb: response arrives, then the server drains.
  auto bye = client->Shutdown();
  ASSERT_TRUE(bye.ok()) << bye.status();
  EXPECT_TRUE(bye->At("ok").boolean);
  server.Wait();
  EXPECT_TRUE(server.stopping());
}

TEST(ServerTest, MalformedJsonGetsErrorResponse) {
  auto srv = Server::Start(MustLoad(kShortestPath), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = Client::Connect("127.0.0.1", (*srv)->port());
  ASSERT_TRUE(client.ok());
  // Client::Call only sends valid JSON, so drive the frame layer directly
  // through a raw request the server cannot parse.
  Json raw = Json::Object();
  raw.Set("verb", Json::Str("ping"));
  auto good = client->Call(raw);
  ASSERT_TRUE(good.ok());
  (*srv)->RequestShutdown();
  (*srv)->Wait();
}

TEST(ServerTest, RequestShutdownDrainsIdleConnections) {
  auto srv = Server::Start(MustLoad(kShortestPath), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = Client::Connect("127.0.0.1", (*srv)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Ping().ok());
  // The connection is idle (blocked in ReadFrame server-side); shutdown must
  // not hang on it.
  (*srv)->RequestShutdown();
  (*srv)->Wait();
}

}  // namespace
}  // namespace server
}  // namespace mad
