// End-to-end coverage of the powerset lattices (Figure 1 rows 9-11) through
// the surface language: set literals, union aggregation through recursion,
// and the label-flow program on cyclic graphs.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workloads/programs.h"

namespace mad {
namespace {

using core::ParseAndRun;
using core::ParsedRun;
using datalog::Value;
using datalog::ValueSet;

Value Labels(const ParsedRun& run, const char* node) {
  auto v = core::LookupCost(*run.program, run.result.db, "label",
                            {Value::Symbol(node)});
  EXPECT_TRUE(v.has_value());
  return *v;
}

Value Syms(std::vector<const char*> names) {
  ValueSet elems;
  for (const char* n : names) elems.push_back(Value::Symbol(n));
  return Value::Set(std::move(elems));
}

TEST(SetLiteralTest, ParsesAndNormalizes) {
  auto p = datalog::ParseProgram(R"(
.decl init(x, s: set_union)
init(a, {red, blue, red}).
init(b, {}).
init(c, {1, 2, {nested}}).
)");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->facts().size(), 3u);
  EXPECT_EQ(*p->facts()[0].cost, Syms({"red", "blue"}));  // deduped, sorted
  EXPECT_EQ(p->facts()[1].cost->set_value().size(), 0u);
  EXPECT_EQ(p->facts()[2].cost->set_value().size(), 3u);
}

TEST(SetLiteralTest, NonConstantElementRejected) {
  auto p = datalog::ParseProgram(R"(
.decl init(x, s: set_union)
init(a, {X}).
)");
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("only constants"), std::string::npos);
}

TEST(LabelFlowTest, ChainAccumulatesUnions) {
  auto run = ParseAndRun(std::string(workloads::kLabelFlowProgram) + R"(
init(s1, {red}).
init(s2, {blue}).
node(a). node(b).
feeds(s1, a).
feeds(s2, a).
feeds(a, b).
)");
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(Labels(*run, "a"), Syms({"red", "blue"}));
  EXPECT_EQ(Labels(*run, "b"), Syms({"red", "blue"}));
}

TEST(LabelFlowTest, CycleReachesTheJoinNotBottom) {
  // a and b feed each other; a also gets {red} from a source. The least
  // fixpoint labels *both* with {red} — a well-founded reading would leave
  // the cycle undefined.
  auto run = ParseAndRun(std::string(workloads::kLabelFlowProgram) + R"(
init(s, {red}).
node(a). node(b).
feeds(s, a).
feeds(a, b).
feeds(b, a).
)");
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(Labels(*run, "a"), Syms({"red"}));
  EXPECT_EQ(Labels(*run, "b"), Syms({"red"}));
  EXPECT_TRUE(run->result.stats.reached_fixpoint);
}

TEST(LabelFlowTest, IsolatedCycleStaysEmpty) {
  // A cycle with no sources keeps the default bottom ∅ (minimality).
  auto run = ParseAndRun(std::string(workloads::kLabelFlowProgram) + R"(
node(a). node(b).
feeds(a, b).
feeds(b, a).
)");
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(Labels(*run, "a").set_value().size(), 0u);
  EXPECT_EQ(Labels(*run, "b").set_value().size(), 0u);
}

TEST(LabelFlowTest, DiamondMergesBranches) {
  auto run = ParseAndRun(std::string(workloads::kLabelFlowProgram) + R"(
init(s1, {x, y}).
init(s2, {y, z}).
node(l). node(r). node(sink).
feeds(s1, l).
feeds(s2, r).
feeds(l, sink).
feeds(r, sink).
)");
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(Labels(*run, "l"), Syms({"x", "y"}));
  EXPECT_EQ(Labels(*run, "r"), Syms({"y", "z"}));
  EXPECT_EQ(Labels(*run, "sink"), Syms({"x", "y", "z"}));
}

TEST(LabelFlowTest, ProgramPassesAllStaticChecks) {
  auto run = ParseAndRun(std::string(workloads::kLabelFlowProgram) +
                         "node(a).\n");
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->result.check.overall().ok());
  EXPECT_TRUE(run->result.check.admissible.ok());
}

TEST(LabelFlowTest, NaiveAndSemiNaiveAgreeOnSets) {
  std::string text = std::string(workloads::kLabelFlowProgram) + R"(
init(s, {a1, a2, a3}).
node(n0). node(n1). node(n2). node(n3).
feeds(s, n0).
feeds(n0, n1). feeds(n1, n2). feeds(n2, n3). feeds(n3, n1).
)";
  core::EvalOptions naive;
  naive.strategy = core::Strategy::kNaive;
  auto a = ParseAndRun(text, naive);
  auto b = ParseAndRun(text);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->result.db.ToString(), b->result.db.ToString());
}

TEST(LabelFlowTest, NegatedSetCostSubgoal) {
  // Negation over a set-valued cost atom: !label(X, {}) selects labelled
  // nodes.
  auto run = ParseAndRun(std::string(workloads::kLabelFlowProgram) + R"(
.decl labelled(x)
labelled(X) :- node(X), label(X, S), !label(X, {}).
init(s, {red}).
node(a). node(b).
feeds(s, a).
)");
  ASSERT_TRUE(run.ok()) << run.status();
  auto la = core::LookupCost(*run->program, run->result.db, "labelled",
                             {Value::Symbol("a")});
  auto lb = core::LookupCost(*run->program, run->result.db, "labelled",
                             {Value::Symbol("b")});
  EXPECT_TRUE(la.has_value());
  EXPECT_FALSE(lb.has_value());
}

}  // namespace
}  // namespace mad
