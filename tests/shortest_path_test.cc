// Experiment E2.6/E3.1: the shortest-path program's least model matches the
// classical algorithms, across graph families, strategies and seeds.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/shortest_path.h"
#include "core/engine.h"
#include "workloads/generators.h"
#include "workloads/programs.h"
#include "workloads/to_datalog.h"

namespace mad {
namespace {

using baselines::AllPairsNonEmptyDijkstra;
using baselines::BellmanFord;
using baselines::Graph;
using baselines::kUnreachable;
using core::EvalOptions;
using core::Strategy;
using datalog::Program;
using datalog::Value;

/// Runs the paper's shortest-path program on `g`, returning the s relation
/// as a dense matrix (kUnreachable where absent).
std::vector<std::vector<double>> EngineShortestPaths(
    const Graph& g, EvalOptions options = {},
    core::EvalStats* stats_out = nullptr) {
  auto program = datalog::ParseProgram(workloads::kShortestPathProgram);
  EXPECT_TRUE(program.ok()) << program.status();
  datalog::Database edb;
  EXPECT_TRUE(workloads::AddGraphFacts(*program, g, &edb).ok());
  core::Engine engine(*program, options);
  auto result = engine.Run(std::move(edb));
  EXPECT_TRUE(result.ok()) << result.status();
  if (stats_out != nullptr) *stats_out = result->stats;

  std::vector<std::vector<double>> out(
      g.num_nodes, std::vector<double>(g.num_nodes, kUnreachable));
  const datalog::Relation* s =
      result->db.Find(program->FindPredicate("s"));
  if (s != nullptr) {
    s->ForEach([&](const datalog::Tuple& key, const Value& cost) {
      int x = std::stoi(std::string(key[0].symbol_name()).substr(1));
      int y = std::stoi(std::string(key[1].symbol_name()).substr(1));
      out[x][y] = cost.AsDouble();
    });
  }
  return out;
}

void ExpectMatricesEqual(const std::vector<std::vector<double>>& got,
                         const std::vector<std::vector<double>>& want,
                         const char* label) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t x = 0; x < got.size(); ++x) {
    for (size_t y = 0; y < got[x].size(); ++y) {
      if (std::isinf(want[x][y])) {
        EXPECT_TRUE(std::isinf(got[x][y]))
            << label << ": (" << x << "," << y << ")";
      } else {
        EXPECT_NEAR(got[x][y], want[x][y], 1e-9)
            << label << ": (" << x << "," << y << ")";
      }
    }
  }
}

class ShortestPathSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(ShortestPathSeedTest, MatchesDijkstraOnRandomGraphs) {
  Random rng(GetParam());
  Graph g = workloads::RandomGraph(25, 80, {1.0, 10.0}, &rng);
  ExpectMatricesEqual(EngineShortestPaths(g), AllPairsNonEmptyDijkstra(g),
                      "random");
}

TEST_P(ShortestPathSeedTest, MatchesDijkstraOnCycleGraphs) {
  Random rng(100 + GetParam());
  Graph g = workloads::CycleGraph(15, 10, {0.0, 5.0}, &rng);
  ExpectMatricesEqual(EngineShortestPaths(g), AllPairsNonEmptyDijkstra(g),
                      "cycle");
}

TEST_P(ShortestPathSeedTest, MatchesDijkstraOnGrids) {
  Random rng(200 + GetParam());
  Graph g = workloads::GridGraph(5, 5, {1.0, 3.0}, &rng);
  ExpectMatricesEqual(EngineShortestPaths(g), AllPairsNonEmptyDijkstra(g),
                      "grid");
}

TEST_P(ShortestPathSeedTest, AllStrategiesAgree) {
  Random rng(300 + GetParam());
  Graph g = workloads::RandomGraph(15, 45, {1.0, 9.0}, &rng);
  auto semi = EngineShortestPaths(g, {.strategy = Strategy::kSemiNaive});
  auto naive = EngineShortestPaths(g, {.strategy = Strategy::kNaive});
  auto greedy = EngineShortestPaths(g, {.strategy = Strategy::kGreedy});
  ExpectMatricesEqual(naive, semi, "naive-vs-semi");
  ExpectMatricesEqual(greedy, semi, "greedy-vs-semi");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShortestPathSeedTest,
                         ::testing::Range(1, 9));

TEST(ShortestPathTest, NegativeWeightsWithoutNegativeCycles) {
  // Section 5.4: our semantics covers negative weights (where [7]'s
  // cost-monotonicity does not). A layered DAG cannot have cycles, so
  // negating weights is safe.
  Random rng(4242);
  Graph g = workloads::LayeredDag(5, 4, 2, {1.0, 10.0}, &rng);
  Graph neg = workloads::WithNegativeWeights(g, 0.4, &rng);
  auto engine_dist = EngineShortestPaths(neg);
  for (int x = 0; x < neg.num_nodes; ++x) {
    auto bf = BellmanFord(neg, x);
    ASSERT_TRUE(bf.has_value());
    for (int y = 0; y < neg.num_nodes; ++y) {
      if (x == y) continue;  // engine computes non-empty paths only
      if (std::isinf((*bf)[y])) {
        EXPECT_TRUE(std::isinf(engine_dist[x][y]));
      } else {
        EXPECT_NEAR(engine_dist[x][y], (*bf)[y], 1e-9);
      }
    }
  }
}

TEST(ShortestPathTest, GreedyIsWrongOnNegativeWeights) {
  // The Section 5.4 envelope: greedy (GGZ-style) evaluation settles keys
  // too early when an edge is negative. Construct the classic trap:
  //   0 -> 1 (2),  0 -> 2 (3),  2 -> 1 (-2).
  Graph g;
  g.Resize(3);
  g.AddEdge(0, 1, 2);
  g.AddEdge(0, 2, 3);
  g.AddEdge(2, 1, -2);
  core::EvalStats greedy_stats;
  auto greedy =
      EngineShortestPaths(g, {.strategy = Strategy::kGreedy}, &greedy_stats);
  auto exact = EngineShortestPaths(g, {.strategy = Strategy::kSemiNaive});
  EXPECT_NEAR(exact[0][1], 1.0, 1e-9);  // through node 2
  // Greedy settled s(0,1) at 2 before discovering the improvement, and
  // recorded the lost update.
  EXPECT_NEAR(greedy[0][1], 2.0, 1e-9);
  EXPECT_GT(greedy_stats.greedy_violations, 0);
}

TEST(ShortestPathTest, ZeroWeightCyclesConverge) {
  // Example 3.1's self-loop of weight 0 generalized: zero cycles must not
  // loop forever.
  Random rng(7);
  Graph g = workloads::CycleGraph(6, 3, {0.0, 0.0}, &rng);
  core::EvalStats stats;
  auto dist = EngineShortestPaths(g, {}, &stats);
  EXPECT_TRUE(stats.reached_fixpoint);
  for (int x = 0; x < 6; ++x) {
    for (int y = 0; y < 6; ++y) EXPECT_NEAR(dist[x][y], 0.0, 1e-12);
  }
}

TEST(ShortestPathTest, NegativeCycleHitsIterationGuard) {
  // With a reachable negative cycle the least model assigns the limit -inf
  // (Section 6.1); finite iteration cannot reach it and must stop at the
  // guard rather than diverge.
  Graph g;
  g.Resize(2);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 0, -2);
  core::EvalStats stats;
  EvalOptions options;
  options.max_iterations = 200;
  auto dist = EngineShortestPaths(g, options, &stats);
  EXPECT_FALSE(stats.reached_fixpoint);
  // The approximation keeps descending toward -inf.
  EXPECT_LE(dist[0][0], -50);
}

TEST(ShortestPathTest, DijkstraAgainstBellmanFordCrossCheck) {
  // Baseline self-consistency (guards the test oracle itself).
  Random rng(11);
  Graph g = workloads::RandomGraph(30, 120, {0.5, 4.0}, &rng);
  for (int s = 0; s < g.num_nodes; s += 7) {
    auto d = baselines::Dijkstra(g, s);
    auto bf = BellmanFord(g, s);
    ASSERT_TRUE(bf.has_value());
    for (int y = 0; y < g.num_nodes; ++y) {
      if (std::isinf(d[y])) {
        EXPECT_TRUE(std::isinf((*bf)[y]));
      } else {
        EXPECT_NEAR(d[y], (*bf)[y], 1e-9);
      }
    }
  }
}

TEST(ShortestPathTest, BellmanFordDetectsNegativeCycles) {
  Graph g;
  g.Resize(4);
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, -3);
  g.AddEdge(2, 1, 1);
  // Node 3 is isolated: the negative cycle is unreachable from it.
  EXPECT_FALSE(BellmanFord(g, 0).has_value());
  EXPECT_FALSE(BellmanFord(g, 2).has_value());
  EXPECT_TRUE(BellmanFord(g, 3).has_value());
}

}  // namespace
}  // namespace mad
