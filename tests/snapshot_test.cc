// Database::Snapshot and the relation copy-on-write protocol: a snapshot
// shares every relation in O(#relations), stays byte-identical forever, and
// the writer's next mutation of a shared relation clones it instead of
// writing through. This is the storage half of the serving layer's snapshot
// isolation (DESIGN.md "Serving").

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datalog/database.h"
#include "datalog/parser.h"
#include "workloads/programs.h"

namespace mad {
namespace datalog {
namespace {

Program DeclOnly() {
  auto p = ParseProgram(R"(
.decl s(x, y, c: min_real)
.decl e(x, y)
)");
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

Tuple Key(const char* a, const char* b) {
  return {Value::Symbol(a), Value::Symbol(b)};
}

TEST(SnapshotTest, SnapshotSharesRelationsUntilWrite) {
  Program p = DeclOnly();
  Database db;
  Relation* s = db.GetOrCreate(p.FindPredicate("s"));
  s->Merge(Key("a", "b"), Value::Real(5));

  Database snap = db.Snapshot();
  // Shared, not copied: same Relation object behind both databases.
  EXPECT_EQ(snap.Find(p.FindPredicate("s")), db.Find(p.FindPredicate("s")));
  EXPECT_TRUE(db.Find(p.FindPredicate("s"))->frozen());

  // First write after the snapshot clones; the snapshot keeps the old rows.
  Relation* again = db.GetOrCreate(p.FindPredicate("s"));
  EXPECT_NE(again, snap.Find(p.FindPredicate("s")));
  EXPECT_FALSE(again->frozen());
  again->Merge(Key("a", "c"), Value::Real(2));
  EXPECT_EQ(snap.Find(p.FindPredicate("s"))->size(), 1u);
  EXPECT_EQ(db.Find(p.FindPredicate("s"))->size(), 2u);
}

TEST(SnapshotTest, CloneIsStableAcrossFurtherWrites) {
  Program p = DeclOnly();
  Database db;
  db.GetOrCreate(p.FindPredicate("s"))->Merge(Key("a", "b"), Value::Real(5));

  Database snap1 = db.Snapshot();
  const std::string at1 = snap1.ToString();

  db.FindMutable(p.FindPredicate("s"))->Merge(Key("a", "b"), Value::Real(1));
  Database snap2 = db.Snapshot();
  const std::string at2 = snap2.ToString();

  db.FindMutable(p.FindPredicate("s"))->Merge(Key("b", "c"), Value::Real(9));

  EXPECT_EQ(snap1.ToString(), at1);
  EXPECT_EQ(snap2.ToString(), at2);
  EXPECT_NE(at1, at2);
  EXPECT_EQ(db.Find(p.FindPredicate("s"))->size(), 2u);
}

TEST(SnapshotTest, OnlyTouchedRelationsAreCloned) {
  Program p = DeclOnly();
  Database db;
  db.GetOrCreate(p.FindPredicate("s"))->Merge(Key("a", "b"), Value::Real(5));
  db.GetOrCreate(p.FindPredicate("e"))->Merge(Key("x", "y"), Value());

  Database snap = db.Snapshot();
  db.FindMutable(p.FindPredicate("s"));  // COW clone of s only
  EXPECT_NE(db.Find(p.FindPredicate("s")), snap.Find(p.FindPredicate("s")));
  EXPECT_EQ(db.Find(p.FindPredicate("e")), snap.Find(p.FindPredicate("e")));
}

TEST(SnapshotTest, RepeatedSnapshotsWithoutWritesShareEverything) {
  Program p = DeclOnly();
  Database db;
  db.GetOrCreate(p.FindPredicate("s"))->Merge(Key("a", "b"), Value::Real(5));
  Database snap1 = db.Snapshot();
  Database snap2 = db.Snapshot();
  EXPECT_EQ(snap1.Find(p.FindPredicate("s")),
            snap2.Find(p.FindPredicate("s")));
}

TEST(SnapshotTest, RowIdsSurviveTheClone) {
  // Deltas recorded against the pre-clone relation must stay valid against
  // the post-clone one: dense insertion-ordered row ids are part of the COW
  // contract (Engine::Update keeps row handles across merges).
  Program p = DeclOnly();
  Database db;
  Relation* s = db.GetOrCreate(p.FindPredicate("s"));
  uint32_t row0 = 0, row1 = 0;
  s->Merge(Key("a", "b"), Value::Real(5), &row0);
  s->Merge(Key("a", "c"), Value::Real(6), &row1);

  Database snap = db.Snapshot();
  Relation* cloned = db.FindMutable(p.FindPredicate("s"));
  EXPECT_EQ(cloned->key_at(row0), Key("a", "b"));
  EXPECT_EQ(cloned->key_at(row1), Key("a", "c"));
  uint32_t row2 = 0;
  cloned->Merge(Key("b", "c"), Value::Real(7), &row2);
  EXPECT_EQ(row2, 2u);
}

TEST(SnapshotTest, UpdateAfterSnapshotLeavesSnapshotIntact) {
  // The real serving sequence: Run, Snapshot, Update, Snapshot — the first
  // snapshot must still render the pre-update least model.
  auto program = ParseProgram(workloads::kShortestPathProgram);
  ASSERT_TRUE(program.ok()) << program.status();
  Database edb;
  Fact ab;
  ab.pred = program->FindPredicate("arc");
  ab.key = Key("a", "b");
  ab.cost = Value::Real(1);
  ASSERT_TRUE(edb.AddFact(ab).ok());
  Fact bc;
  bc.pred = program->FindPredicate("arc");
  bc.key = Key("b", "c");
  bc.cost = Value::Real(2);
  ASSERT_TRUE(edb.AddFact(bc).ok());
  core::Engine engine(*program);
  auto result = engine.Run(std::move(edb));
  ASSERT_TRUE(result.ok()) << result.status();

  Database before = result->db.Snapshot();
  const std::string expected = before.ToString();

  Fact f;
  f.pred = program->FindPredicate("arc");
  f.key = Key("a", "c");
  f.cost = Value::Real(0.5);
  ASSERT_TRUE(engine.Update(&result.value(), {f}).ok());

  EXPECT_EQ(before.ToString(), expected);
  EXPECT_NE(result->db.ToString(), expected);
  Database after = result->db.Snapshot();
  EXPECT_EQ(after.ToString(), result->db.ToString());
}

}  // namespace
}  // namespace datalog
}  // namespace mad
