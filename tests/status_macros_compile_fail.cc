// Compile-FAIL fixture: MAD_ASSIGN_OR_RETURN as the direct substatement of an
// unbraced `if` must be rejected at compile time. The macro necessarily
// expands to multiple statements (it may declare `lhs`), so under an unbraced
// `if` only the hidden StatusOr temporary's declaration becomes the branch
// body and the subsequent uses refer to an out-of-scope name. A softer macro
// would instead compile and execute the assignment unconditionally — the
// silent-misuse bug this fixture guards against.
//
// Built by the `status_macros_compile_fail_builds` ctest entry, which is
// marked WILL_FAIL: the test passes exactly when this file does NOT compile.
#include "util/status.h"

namespace mad {
namespace {

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status Misuse(bool cond, int* out) {
  if (cond)
    MAD_ASSIGN_OR_RETURN(*out, Half(8));  // must not compile: unbraced if
  return Status::OK();
}

}  // namespace
}  // namespace mad

int main() { return 0; }
