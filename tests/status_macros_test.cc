// Runtime behaviour of MAD_RETURN_IF_ERROR / MAD_ASSIGN_OR_RETURN in the
// control-flow shapes that historically break naive status macros: unbraced
// if/else (dangling-else capture), multiple expansions in one scope (and on
// one source line, via a wrapper macro), and loops. The matching *misuse* —
// MAD_ASSIGN_OR_RETURN as the direct substatement of an unbraced `if` — must
// fail to compile; that is covered by status_macros_compile_fail.cc through
// the `status_macros_compile_fail_builds` ctest entry (WILL_FAIL).
#include <gtest/gtest.h>

#include <vector>

#include "util/status.h"

namespace mad {
namespace {

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status Check(bool ok) {
  if (!ok) return Status::Internal("check failed");
  return Status::OK();
}

// MAD_RETURN_IF_ERROR directly under an unbraced `if` that owns an `else`:
// a macro expanding to a bare `if` would steal the `else` and silently invert
// the branch. The do/while(0) expansion keeps the pairing intact.
Status DanglingElseSafe(bool take_branch, bool inner_ok, int* trace) {
  if (take_branch)
    MAD_RETURN_IF_ERROR(Check(inner_ok));
  else
    *trace = -1;
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorDoesNotCaptureElse) {
  int trace = 0;
  EXPECT_TRUE(DanglingElseSafe(true, true, &trace).ok());
  EXPECT_EQ(trace, 0);  // else must NOT have run
  EXPECT_EQ(DanglingElseSafe(true, false, &trace).code(),
            StatusCode::kInternal);
  EXPECT_TRUE(DanglingElseSafe(false, false, &trace).ok());
  EXPECT_EQ(trace, -1);  // else runs only when the condition is false
}

Status TwoAssignsSameScope(int a, int b, int* out) {
  MAD_ASSIGN_OR_RETURN(int ha, Half(a));
  MAD_ASSIGN_OR_RETURN(int hb, Half(b));
  *out = ha + hb;
  return Status::OK();
}

TEST(StatusMacrosTest, TwoAssignOrReturnsInOneScope) {
  int out = 0;
  EXPECT_TRUE(TwoAssignsSameScope(8, 4, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_EQ(TwoAssignsSameScope(3, 4, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TwoAssignsSameScope(8, 3, &out).code(),
            StatusCode::kInvalidArgument);
}

// Two expansions sharing one source line: __LINE__-based temporaries would
// collide; __COUNTER__-based ones must not.
#define HALVE_BOTH(x, y, outx, outy)      \
  MAD_ASSIGN_OR_RETURN(*(outx), Half(x)); \
  MAD_ASSIGN_OR_RETURN(*(outy), Half(y))

Status HalveBoth(int x, int y, int* ox, int* oy) {
  HALVE_BOTH(x, y, ox, oy);
  return Status::OK();
}

TEST(StatusMacrosTest, TwoAssignOrReturnsOnOneLine) {
  int ox = 0, oy = 0;
  EXPECT_TRUE(HalveBoth(10, 6, &ox, &oy).ok());
  EXPECT_EQ(ox, 5);
  EXPECT_EQ(oy, 3);
  EXPECT_FALSE(HalveBoth(10, 7, &ox, &oy).ok());
}

Status SumHalves(const std::vector<int>& xs, int* out) {
  *out = 0;
  for (int x : xs) {
    MAD_ASSIGN_OR_RETURN(int h, Half(x));
    *out += h;
  }
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnInsideLoop) {
  int out = 0;
  EXPECT_TRUE(SumHalves({2, 4, 6}, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_EQ(SumHalves({2, 5, 6}, &out).code(), StatusCode::kInvalidArgument);
}

Status BracedBranches(bool which, int* out) {
  if (which) {
    MAD_ASSIGN_OR_RETURN(int h, Half(8));
    *out = h;
  } else {
    MAD_ASSIGN_OR_RETURN(int h, Half(20));
    *out = h;
  }
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnInBracedIfElse) {
  int out = 0;
  EXPECT_TRUE(BracedBranches(true, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(BracedBranches(false, &out).ok());
  EXPECT_EQ(out, 10);
}

TEST(StatusMacrosTest, ReturnIfErrorEvaluatesExpressionOnce) {
  int calls = 0;
  auto counted = [&]() {
    ++calls;
    return Status::OK();
  };
  auto run = [&]() -> Status {
    MAD_RETURN_IF_ERROR(counted());
    return Status::OK();
  };
  EXPECT_TRUE(run().ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace mad
