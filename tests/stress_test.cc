// Differential stress testing: randomly generated multi-component lattice
// programs (stacked aggregations + recursive cost propagation) evaluated
// under all applicable strategies must agree, pass the static checks they
// are constructed to satisfy, and be idempotent.

#include <gtest/gtest.h>

#include <string>

#include "core/engine.h"
#include "util/random.h"
#include "util/string_util.h"

namespace mad {
namespace {

using core::EvalOptions;
using core::ParseAndRun;
using core::Strategy;

/// Builds a random layered program:
///   layer 0: EDB edges e0(x, y, w) over `nodes` nodes;
///   odd layers: a recursive min-cost closure over the previous layer;
///   even layers: a stratified reduction of the previous (a min extremum,
///   or — when `allow_count` — a count re-injected as a weight, which is
///   admissible but deliberately NOT update-monotone).
/// All rules are admissible by construction.
std::string RandomLayeredProgram(int nodes, int edges, int layers,
                                 Random* rng, bool allow_count = true) {
  std::string text;
  text += ".decl e0(x, y, c: min_real)\n";
  for (int i = 0; i < edges; ++i) {
    text += StrPrintf("e0(v%d, v%d, %.3f).\n",
                      static_cast<int>(rng->Uniform(0, nodes - 1)),
                      static_cast<int>(rng->Uniform(0, nodes - 1)),
                      rng->UniformReal(0.5, 9.5));
  }
  std::string prev = "e0";
  for (int layer = 1; layer <= layers; ++layer) {
    if (layer % 2 == 1) {
      // Recursive closure component: tc_k(x, y) = min-cost path over prev.
      std::string tc = StrPrintf("tc%d", layer);
      std::string hop = StrPrintf("hop%d", layer);
      text += StrPrintf(".decl %s(x, m, y, c: min_real)\n", hop.c_str());
      text += StrPrintf(".decl %s(x, y, c: min_real)\n", tc.c_str());
      text += StrPrintf(".constraint %s(base, Z, C).\n", prev.c_str());
      text += StrPrintf("%s(X, base, Y, C) :- %s(X, Y, C).\n", hop.c_str(),
                        prev.c_str());
      text += StrPrintf(
          "%s(X, Z, Y, C) :- %s(X, Z, C1), %s(Z, Y, C2), C = C1 + C2.\n",
          hop.c_str(), tc.c_str(), prev.c_str());
      text += StrPrintf("%s(X, Y, C) :- C =r min D : %s(X, Z, Y, D).\n",
                        tc.c_str(), hop.c_str());
      prev = tc;
    } else {
      // Stratified reduction: per-source extremum or count of the closure.
      const char* agg =
          (allow_count && rng->Bernoulli(0.5)) ? "count" : "min";
      std::string red = StrPrintf("red%d", layer);
      if (std::string(agg) == "min") {
        text += StrPrintf(".decl %s(x, c: min_real)\n", red.c_str());
        text += StrPrintf("%s(X, C) :- C =r min D : %s(X, Y, D).\n",
                          red.c_str(), prev.c_str());
        // Feed a derived min_real edge relation into the next layer.
        std::string next = StrPrintf("e%d", layer);
        text += StrPrintf(".decl %s(x, y, c: min_real)\n", next.c_str());
        text += StrPrintf("%s(X, X, C) :- %s(X, C).\n", next.c_str(),
                          red.c_str());
        prev = next;
      } else {
        text += StrPrintf(".decl %s(x, n: count_nat)\n", red.c_str());
        text += StrPrintf("%s(X, N) :- N =r count : %s(X, Y, D).\n",
                          red.c_str(), prev.c_str());
        // Re-inject counts as weights for the next layer.
        std::string next = StrPrintf("e%d", layer);
        text += StrPrintf(".decl %s(x, y, c: min_real)\n", next.c_str());
        text += StrPrintf("%s(X, X, C) :- %s(X, N), C = N + 1.\n",
                          next.c_str(), red.c_str());
        prev = next;
      }
    }
  }
  return text;
}

class StressSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(StressSeedTest, StrategiesAgreeOnRandomLayeredPrograms) {
  Random rng(GetParam() * 7919);
  int layers = 1 + static_cast<int>(rng.Uniform(1, 4));
  std::string text = RandomLayeredProgram(8, 24, layers, &rng);

  EvalOptions naive;
  naive.strategy = Strategy::kNaive;
  auto a = ParseAndRun(text, naive);
  ASSERT_TRUE(a.ok()) << a.status() << "\nprogram:\n" << text;
  auto b = ParseAndRun(text);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->result.db.ToString(), b->result.db.ToString())
      << "program:\n"
      << text;
  EXPECT_TRUE(a->result.check.overall().ok());
  EXPECT_TRUE(b->result.stats.reached_fixpoint);
}

TEST_P(StressSeedTest, IncrementalTricklingMatchesBatch) {
  Random rng(GetParam() * 104729);
  // Count layers are admissible but not update-monotone (an ascending count
  // feeding a min-lattice weight); restrict trickling to min-only layers —
  // the rejection of count layers is tested separately below.
  std::string program_text =
      RandomLayeredProgram(6, 0, 3, &rng, /*allow_count=*/false);
  auto program = datalog::ParseProgram(program_text);
  ASSERT_TRUE(program.ok()) << program.status();
  core::Engine engine(*program);

  // Trickle random e0 facts through Update...
  auto trickled = engine.Run(datalog::Database());
  ASSERT_TRUE(trickled.ok());
  std::vector<datalog::Fact> all;
  for (int i = 0; i < 18; ++i) {
    datalog::Fact f;
    f.pred = program->FindPredicate("e0");
    f.key = {datalog::Value::Symbol(
                 StrPrintf("v%d", static_cast<int>(rng.Uniform(0, 5)))),
             datalog::Value::Symbol(
                 StrPrintf("v%d", static_cast<int>(rng.Uniform(0, 5))))};
    f.cost = datalog::Value::Real(rng.UniformReal(0.5, 9.5));
    all.push_back(f);
    auto st = engine.Update(&trickled.value(), {f});
    ASSERT_TRUE(st.ok()) << st.status();
  }
  // ...and compare against one batch run.
  datalog::Database edb;
  for (const auto& f : all) ASSERT_TRUE(edb.AddFact(f).ok());
  auto batch = engine.Run(std::move(edb));
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(trickled->db.ToString(), batch->db.ToString())
      << "program:\n"
      << program_text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeedTest, ::testing::Range(1, 13));

TEST(StressTest, UpdateGuardsAntitoneValueIncreases) {
  // An ascending count re-injected as a min_real weight is fine for batch
  // evaluation (stratified) but incremental inserts that raise the count
  // must be refused — otherwise stale smaller weights would persist.
  const char* text = R"(
.decl e0(x, y, c: min_real)
.decl red(x, n: count_nat)
.decl e1(x, y, c: min_real)
red(X, N) :- N =r count : e0(X, Y, D).
e1(X, X, C) :- red(X, N), C = N + 1.
)";
  auto program = datalog::ParseProgram(text);
  ASSERT_TRUE(program.ok());
  core::Engine engine(*program);
  auto result = engine.Run(datalog::Database());
  ASSERT_TRUE(result.ok());

  datalog::Fact f1;
  f1.pred = program->FindPredicate("e0");
  f1.key = {datalog::Value::Symbol("a"), datalog::Value::Symbol("b")};
  f1.cost = datalog::Value::Real(1.0);
  // The first insert creates red(a, 1): a *new* key, allowed.
  ASSERT_TRUE(engine.Update(&result.value(), {f1}).ok());
  // The second raises red(a) from 1 to 2 — an antitonically-consumed
  // increase: refused.
  datalog::Fact f2 = f1;
  f2.key[1] = datalog::Value::Symbol("c");
  auto st = engine.Update(&result.value(), {f2});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.status().message().find("antitonically"), std::string::npos);
}

}  // namespace
}  // namespace mad
