// Section 6.2: when is the bottom-up iteration guaranteed to terminate?

#include <gtest/gtest.h>

#include "analysis/termination.h"
#include "datalog/parser.h"
#include "workloads/programs.h"

namespace mad {
namespace analysis {
namespace {

TerminationReport Analyze(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  DependencyGraph graph(*p);
  return AnalyzeTermination(*p, graph);
}

TEST(TerminationTest, PlainDatalogGuaranteed) {
  auto report = Analyze(R"(
.decl e(x, y)
.decl tc(x, y)
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), e(Z, Y).
)");
  EXPECT_TRUE(report.AllGuaranteed()) << report.ToString();
}

TEST(TerminationTest, CircuitGuaranteedBooleanChainsAreFinite) {
  // bool_or has chains of length 2: every wire flips at most once.
  auto report = Analyze(workloads::kCircuitProgram);
  EXPECT_TRUE(report.AllGuaranteed()) << report.ToString();
}

TEST(TerminationTest, PartyRecursiveComponentGuaranteed) {
  // The recursive component {coming, kc} carries no cost arguments; the
  // count feeding it ranges over count_nat but count_nat appears only on a
  // *non-recursive* predicate... actually `coming`'s component has no cost
  // predicates at all, so it is guaranteed.
  auto report = Analyze(workloads::kPartyProgram);
  EXPECT_TRUE(report.AllGuaranteed()) << report.ToString();
}

TEST(TerminationTest, ShortestPathUnknownRealChains) {
  // min_real admits infinite ascending chains (negative cycles descend
  // forever) — the analysis must not promise termination.
  auto report = Analyze(workloads::kShortestPathProgram);
  EXPECT_FALSE(report.AllGuaranteed());
  bool found_reason = false;
  for (const auto& c : report.components) {
    if (c.verdict == TerminationVerdict::kUnknown) {
      found_reason = true;
      EXPECT_NE(c.reason.find("min_real"), std::string::npos) << c.reason;
    }
  }
  EXPECT_TRUE(found_reason);
}

TEST(TerminationTest, HalfsumUnknown) {
  // Example 5.1 is exactly the monotone-but-not-continuous case.
  auto report = Analyze(workloads::kHalfsumProgram);
  EXPECT_FALSE(report.AllGuaranteed());
}

TEST(TerminationTest, NonRecursiveAggregationGuaranteedEvenOnReals) {
  // Stratified aggregation over an infinite-chain lattice still terminates:
  // one pass.
  auto report = Analyze(R"(
.decl r(x, c: max_real)
.decl top(x, c: max_real)
top(X, C) :- C =r max D : r(X, D).
)");
  EXPECT_TRUE(report.AllGuaranteed()) << report.ToString();
}

TEST(TerminationTest, ReportToStringNamesVerdicts) {
  auto report = Analyze(workloads::kShortestPathProgram);
  std::string s = report.ToString();
  EXPECT_NE(s.find("unknown"), std::string::npos);
  EXPECT_NE(s.find("component"), std::string::npos);
}

}  // namespace
}  // namespace analysis
}  // namespace mad
