#include "util/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace mad {
namespace {

TEST(ThreadPoolTest, SerialPoolRunsEverythingInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_participants(), 1);
  std::vector<int64_t> order;
  pool.ParallelFor(10, [&](int participant, int64_t i) {
    EXPECT_EQ(participant, 0);
    order.push_back(i);
  });
  std::vector<int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // pool of 1 preserves iteration order
}

TEST(ThreadPoolTest, EmptyAndNegativeRangesAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int, int64_t) { ++calls; });
  pool.ParallelFor(-5, [&](int, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int, int64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParticipantIdsAreInRangeAndExclusive) {
  ThreadPool pool(4);
  const int p = pool.num_participants();
  // A participant runs at most one item at a time: per-participant scratch
  // must never be touched concurrently. Flag a slot while working in it.
  std::vector<std::atomic<int>> in_use(p);
  std::atomic<bool> overlap{false};
  pool.ParallelFor(5000, [&](int participant, int64_t) {
    ASSERT_GE(participant, 0);
    ASSERT_LT(participant, p);
    if (in_use[participant].fetch_add(1, std::memory_order_acq_rel) != 0) {
      overlap.store(true, std::memory_order_relaxed);
    }
    in_use[participant].fetch_sub(1, std::memory_order_acq_rel);
  });
  EXPECT_FALSE(overlap.load());
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, [&](int, int64_t) {
    pool.ParallelFor(100, [&](int, int64_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolTest, SumMatchesSerialUnderContention) {
  ThreadPool pool(8);
  constexpr int64_t kN = 200000;
  const int p = pool.num_participants();
  std::vector<int64_t> partial(p, 0);
  pool.ParallelFor(kN, [&](int participant, int64_t i) {
    partial[participant] += i;  // safe: one item at a time per participant
  });
  int64_t sum = std::accumulate(partial.begin(), partial.end(), int64_t{0});
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(round, [&](int, int64_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), round);
  }
}

TEST(ThreadPoolTest, OversubscribedPoolStillCorrect) {
  // More participants than the host has cores (this container often has 1).
  ThreadPool pool(16);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(1000, [&](int, int64_t i) {
    total.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 1000 * 999 / 2);
}

}  // namespace
}  // namespace mad
