// Flow-insensitive column type inference (analysis/typing): evidence joins,
// conflict reporting, and the annotation side channel.

#include <gtest/gtest.h>

#include <string>

#include "analysis/typing/types.h"
#include "datalog/parser.h"

namespace mad {
namespace analysis {
namespace typing {
namespace {

using datalog::ColumnType;
using datalog::Program;

Program MustParse(std::string_view text) {
  auto p = datalog::ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

const std::vector<TypeDesc>& TypesOf(const TypeReport& report,
                                     const Program& program,
                                     const char* pred) {
  const datalog::PredicateInfo* p = program.FindPredicate(pred);
  EXPECT_NE(p, nullptr) << pred;
  const std::vector<TypeDesc>* cols = report.ForPredicate(p);
  EXPECT_NE(cols, nullptr) << pred;
  return *cols;
}

TEST(TypingTest, FactEvidenceTypesColumns) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl n(x, c)
    e(a, b).
    n(a, 3).
  )");
  TypeReport report = InferTypes(program);
  EXPECT_TRUE(report.conflicts().empty());

  const auto& e = TypesOf(report, program, "e");
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0].kind, ColumnType::kSymbol);
  EXPECT_EQ(e[1].kind, ColumnType::kSymbol);

  const auto& n = TypesOf(report, program, "n");
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0].kind, ColumnType::kSymbol);
  EXPECT_EQ(n[1].kind, ColumnType::kInt);
}

TEST(TypingTest, RuleDataflowPropagatesTypes) {
  Program program = MustParse(R"(
    .decl e(x, y)
    .decl tc(x, y)
    e(a, b).
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- tc(X, Z), e(Z, Y).
  )");
  TypeReport report = InferTypes(program);
  EXPECT_TRUE(report.conflicts().empty());
  const auto& tc = TypesOf(report, program, "tc");
  ASSERT_EQ(tc.size(), 2u);
  EXPECT_EQ(tc[0].kind, ColumnType::kSymbol);
  EXPECT_EQ(tc[1].kind, ColumnType::kSymbol);
}

TEST(TypingTest, CostColumnsAreLatticeTyped) {
  Program program = MustParse(R"(
    .decl arc(x, y, c: min_real)
    .decl d(x, y, c: min_real)
    arc(a, b, 1).
    d(X, Y, C) :- C =r min E : arc(X, Y, E).
  )");
  TypeReport report = InferTypes(program);
  EXPECT_TRUE(report.conflicts().empty()) << report.conflicts()[0].ToString();
  const auto& arc = TypesOf(report, program, "arc");
  ASSERT_EQ(arc.size(), 3u);
  EXPECT_EQ(arc[2].kind, ColumnType::kLattice);
  ASSERT_NE(arc[2].domain, nullptr);
  EXPECT_EQ(arc[2].ToString(), "min_real");
  const auto& d = TypesOf(report, program, "d");
  EXPECT_EQ(d[2].kind, ColumnType::kLattice);
}

TEST(TypingTest, IntAndRealJoinToNumeric) {
  Program program = MustParse(R"(
    .decl m(x)
    m(3).
    m(4.5).
  )");
  TypeReport report = InferTypes(program);
  EXPECT_TRUE(report.conflicts().empty());
  EXPECT_EQ(TypesOf(report, program, "m")[0].kind, ColumnType::kNumeric);
}

TEST(TypingTest, CrossKindFlowIsReportedOnce) {
  Program program = MustParse(R"(
    .decl age(p, n)
    .decl name(p, s)
    .decl mix(x)
    age(alice, 34).
    name(alice, al).
    mix(X) :- age(P, X), name(P, X).
    mix(Y) :- name(Q, Y), age(Q, Y).
  )");
  TypeReport report = InferTypes(program);
  // The classes are merged after the first conflict poisons them; the
  // second rule's identical contradiction is absorbed silently.
  ASSERT_EQ(report.conflicts().size(), 1u);
  const TypeConflict& c = report.conflicts()[0];
  EXPECT_FALSE(c.constant_evidence);
  EXPECT_EQ(c.rule_index, 0);
  EXPECT_EQ(TypesOf(report, program, "mix")[0].kind, ColumnType::kConflict);
}

TEST(TypingTest, ConstantMismatchIsFlaggedAsConstantEvidence) {
  Program program = MustParse(R"(
    .decl tag(p, s)
    .decl t(x)
    tag(box, red).
    t(X) :- tag(P, X), X = 7.
  )");
  TypeReport report = InferTypes(program);
  ASSERT_EQ(report.conflicts().size(), 1u);
  EXPECT_TRUE(report.conflicts()[0].constant_evidence);
}

TEST(TypingTest, OrderedComparisonImpliesNumeric) {
  Program program = MustParse(R"(
    .decl v(x)
    .decl big(x)
    v(X) :- big(X), X > 10.
  )");
  TypeReport report = InferTypes(program);
  EXPECT_TRUE(report.conflicts().empty());
  EXPECT_EQ(TypesOf(report, program, "big")[0].kind, ColumnType::kNumeric);
  EXPECT_EQ(TypesOf(report, program, "v")[0].kind, ColumnType::kNumeric);
}

TEST(TypingTest, DifferentNumericLatticesJoinToNumericNotConflict) {
  // Cross-domain *flow* is MAD014's business; the type layer only records
  // that the shared variable is numeric.
  Program program = MustParse(R"(
    .decl m1(x, c: min_real)
    .decl m2(x, c: max_real)
    .decl mix(x, y)
    m1(a, 1).
    m2(a, 2).
    mix(X, Y) :- m1(X, C), m2(Y, C).
  )");
  TypeReport report = InferTypes(program);
  EXPECT_TRUE(report.conflicts().empty());
}

TEST(TypingTest, AnnotateStampsPredicateInfo) {
  Program program = MustParse(R"(
    .decl e(x, y)
    e(a, b).
  )");
  TypeReport report = InferTypes(program);
  report.Annotate(program);
  const datalog::PredicateInfo* e = program.FindPredicate("e");
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->col_types.size(), 2u);
  EXPECT_EQ(e->col_types[0], ColumnType::kSymbol);
}

TEST(TypingTest, ToStringListsEveryPredicate) {
  Program program = MustParse(R"(
    .decl arc(x, y, c: min_real)
    arc(a, b, 1).
  )");
  TypeReport report = InferTypes(program);
  std::string s = report.ToString();
  EXPECT_NE(s.find("arc(symbol, symbol, min_real)"), std::string::npos) << s;
}

}  // namespace
}  // namespace typing
}  // namespace analysis
}  // namespace mad
