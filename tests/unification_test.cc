#include <gtest/gtest.h>

#include "analysis/unification.h"
#include "datalog/parser.h"

namespace mad {
namespace analysis {
namespace {

using datalog::Atom;
using datalog::ParseProgram;
using datalog::Program;
using datalog::Rule;
using datalog::Term;
using datalog::Value;

Program MustParse(std::string_view text) {
  auto p = ParseProgram(text);
  EXPECT_TRUE(p.ok()) << p.status();
  return std::move(p).value();
}

TEST(UnifyTermsTest, VariableBindsToConstant) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Var("X"), Term::Const(Value::Int(3)), &s));
  EXPECT_EQ(Resolve(Term::Var("X"), s).constant, Value::Int(3));
}

TEST(UnifyTermsTest, ChainsThroughVariables) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Var("X"), Term::Var("Y"), &s));
  EXPECT_TRUE(UnifyTerms(Term::Var("Y"), Term::Const(Value::Int(7)), &s));
  EXPECT_EQ(Resolve(Term::Var("X"), s).constant, Value::Int(7));
}

TEST(UnifyTermsTest, ConstantClashFails) {
  Substitution s;
  EXPECT_TRUE(UnifyTerms(Term::Var("X"), Term::Const(Value::Int(1)), &s));
  EXPECT_FALSE(UnifyTerms(Term::Var("X"), Term::Const(Value::Int(2)), &s));
}

TEST(UnifyHeadsTest, IgnoresCostArguments) {
  Program p = MustParse(R"(
.decl cv(a, b, c, n: sum_real)
.decl s(a, b, n: sum_real)
.decl c(a, b)
cv(X, X, Y, M) :- s(X, Y, M).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
)");
  auto theta = UnifyHeadsOnKeys(p.rules()[0].head, p.rules()[1].head);
  ASSERT_TRUE(theta.has_value());
  // X and Z are identified; the cost args M and N stay unconstrained.
  EXPECT_EQ(Resolve(Term::Var("Z"), *theta), Resolve(Term::Var("X"), *theta));
  EXPECT_EQ(Resolve(Term::Var("M"), *theta).var, "M");
  EXPECT_EQ(Resolve(Term::Var("N"), *theta).var, "N");
}

TEST(RenameVariablesTest, MakesNamespacesDisjoint) {
  Program p = MustParse(R"(
.decl e(x, y)
.decl q(x, y)
q(X, Y) :- e(X, Y).
)");
  Rule renamed = RenameVariables(p.rules()[0], "#1");
  EXPECT_EQ(renamed.head.args[0].var, "X#1");
  EXPECT_EQ(renamed.body[0].atom.args[1].var, "Y#1");
}

TEST(ContainmentMappingTest, Example25CvRules) {
  // Example 2.5: after unifying the non-cost head arguments, there is a
  // containment mapping (mapping M to N) from the first rule to the second.
  Program p = MustParse(R"(
.decl cv(a, b, c, n: sum_real)
.decl s(a, b, n: sum_real)
.decl c(a, b)
cv(X, X, Y, M) :- s(X, Y, M).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
)");
  Rule r1 = RenameVariables(p.rules()[0], "#1");
  Rule r2 = RenameVariables(p.rules()[1], "#2");
  auto theta = UnifyHeadsOnKeys(r1.head, r2.head);
  ASSERT_TRUE(theta.has_value());
  Rule r1t = ApplySubst(r1, *theta);
  Rule r2t = ApplySubst(r2, *theta);
  EXPECT_TRUE(HasContainmentMapping(r1t, r2t));
  // The reverse direction has no mapping (r2 has the extra c subgoal whose
  // predicate does not occur in r1).
  EXPECT_FALSE(HasContainmentMapping(r2t, r1t));
}

TEST(ContainmentMappingTest, RespectsConstants) {
  Program p = MustParse(R"(
.decl e(x, y)
.decl q(x)
q(X) :- e(X, a).
q(X) :- e(X, b).
)");
  EXPECT_FALSE(HasContainmentMapping(p.rules()[0], p.rules()[1]));
  EXPECT_TRUE(HasContainmentMapping(p.rules()[0], p.rules()[0]));
}

TEST(ContainmentMappingTest, MapsAggregateSubgoals) {
  Program p = MustParse(R"(
.decl e(x, c: min_real)
.decl q(x, c: min_real)
q(X, C) :- C =r min D : e(X, D).
q(Y, N) :- N =r min E : e(Y, E).
)");
  EXPECT_TRUE(HasContainmentMapping(p.rules()[0], p.rules()[1]));
  EXPECT_TRUE(HasContainmentMapping(p.rules()[1], p.rules()[0]));
}

TEST(ContainmentMappingTest, AggregateFunctionMismatchFails) {
  Program p = MustParse(R"(
.decl e(x, c: max_nonneg)
.decl q(x, c: max_nonneg)
q(X, C) :- C =r max D : e(X, D).
q(Y, N) :- N =r sum E : e(Y, E).
)");
  EXPECT_FALSE(HasContainmentMapping(p.rules()[0], p.rules()[1]));
}

TEST(ConstraintInstanceTest, Example25ArcDirect) {
  // The conjunction of the two path-rule bodies contains an instance of
  // ":- arc(direct, Z, C)" after head unification.
  Program p = MustParse(R"(
.decl arc(x, y, c: min_real)
.decl s(x, z, c: min_real)
.decl path(x, z, y, c: min_real)
.constraint arc(direct, Z, C).
path(X, direct, Y, D) :- arc(X, Y, D).
path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
)");
  Rule r1 = RenameVariables(p.rules()[0], "#1");
  Rule r2 = RenameVariables(p.rules()[1], "#2");
  auto theta = UnifyHeadsOnKeys(r1.head, r2.head);
  ASSERT_TRUE(theta.has_value());  // forces Z#2 = direct
  Rule r1t = ApplySubst(r1, *theta);
  Rule r2t = ApplySubst(r2, *theta);
  std::vector<datalog::Subgoal> conjunction;
  for (const auto& sg : r1t.body) conjunction.push_back(sg.Clone());
  for (const auto& sg : r2t.body) conjunction.push_back(sg.Clone());
  EXPECT_TRUE(ContainsConstraintInstance(conjunction, p.constraints()[0]));
  // r1's body alone does not contain the instance.
  std::vector<datalog::Subgoal> only_r1;
  for (const auto& sg : r1t.body) only_r1.push_back(sg.Clone());
  EXPECT_FALSE(ContainsConstraintInstance(only_r1, p.constraints()[0]));
}

TEST(ConstraintInstanceTest, ConstantMustMatchLiterally) {
  Program p = MustParse(R"(
.decl e(x, y)
.constraint e(special, Z).
.decl q(x)
q(X) :- e(X, Y).
)");
  // Body has e(X, Y) with a *variable* first argument — not an instance
  // (the constraint requires the constant `special` to be present).
  std::vector<datalog::Subgoal> body;
  for (const auto& sg : p.rules()[0].body) body.push_back(sg.Clone());
  EXPECT_FALSE(ContainsConstraintInstance(body, p.constraints()[0]));
}

}  // namespace
}  // namespace analysis
}  // namespace mad
