#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace mad {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::AnalysisError("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAnalysisError);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "AnalysisError: bad rule");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kAnalysisError, StatusCode::kCostConsistencyViolation,
        StatusCode::kFixpointNotReached, StatusCode::kNotFound,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  MAD_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(HashTest, MixIsNotIdentity) {
  EXPECT_NE(HashMix64(0), 0u);
  EXPECT_NE(HashMix64(1), 1u);
  EXPECT_NE(HashMix64(1), HashMix64(2));
}

TEST(HashTest, CombineOrderSensitive) {
  size_t a = 0, b = 0;
  HashCombine(&a, 1);
  HashCombine(&a, 2);
  HashCombine(&b, 2);
  HashCombine(&b, 1);
  EXPECT_NE(a, b);
}

TEST(RandomTest, DeterministicForSeed) {
  Random r1(7), r2(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r1.Uniform(0, 1000), r2.Uniform(0, 1000));
  }
}

TEST(RandomTest, UniformInRange) {
  Random r(13);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RandomTest, PermutationIsPermutation) {
  Random r(99);
  std::vector<int> p = r.Permutation(50);
  std::sort(p.begin(), p.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(StringUtilTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrPrintf("empty"), "empty");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "n"});
  t.AddRow({"shortest", "10"});
  t.AddRow({"cc", "2000"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| shortest | 10   |"), std::string::npos);
  EXPECT_NE(s.find("| cc       | 2000 |"), std::string::npos);
}

}  // namespace
}  // namespace mad
