#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>

#include "util/hash.h"
#include "util/random.h"
#include "util/resource_guard.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace mad {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::AnalysisError("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kAnalysisError);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "AnalysisError: bad rule");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kAnalysisError, StatusCode::kCostConsistencyViolation,
        StatusCode::kFixpointNotReached, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, ResourceExhaustedRoundTrips) {
  Status s = Status::ResourceExhausted("deadline exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "ResourceExhausted: deadline exceeded");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  MAD_ASSIGN_OR_RETURN(int h, Half(x));
  *out = h;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(HashTest, MixIsNotIdentity) {
  EXPECT_NE(HashMix64(0), 0u);
  EXPECT_NE(HashMix64(1), 1u);
  EXPECT_NE(HashMix64(1), HashMix64(2));
}

TEST(HashTest, CombineOrderSensitive) {
  size_t a = 0, b = 0;
  HashCombine(&a, 1);
  HashCombine(&a, 2);
  HashCombine(&b, 2);
  HashCombine(&b, 1);
  EXPECT_NE(a, b);
}

TEST(RandomTest, DeterministicForSeed) {
  Random r1(7), r2(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r1.Uniform(0, 1000), r2.Uniform(0, 1000));
  }
}

TEST(RandomTest, UniformInRange) {
  Random r(13);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RandomTest, PermutationIsPermutation) {
  Random r(99);
  std::vector<int> p = r.Permutation(50);
  std::sort(p.begin(), p.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p[i], i);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(StringUtilTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrPrintf("empty"), "empty");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "n"});
  t.AddRow({"shortest", "10"});
  t.AddRow({"cc", "2000"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| shortest | 10   |"), std::string::npos);
  EXPECT_NE(s.find("| cc       | 2000 |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string s = t.ToString();
  // Renders without crashing, with empty cells for the missing columns.
  EXPECT_NE(s.find("| only |"), std::string::npos);
  // Header row and the padded row carry the same number of separators.
  size_t header_end = s.find('\n');
  std::string header = s.substr(0, header_end);
  size_t row_start = s.rfind("| only");
  std::string row = s.substr(row_start, s.find('\n', row_start) - row_start);
  EXPECT_EQ(std::count(header.begin(), header.end(), '|'),
            std::count(row.begin(), row.end(), '|'));
}

TEST(TablePrinterTest, LongRowsFoldOverflowIntoLastColumn) {
  TablePrinter t({"a", "b"});
  t.AddRow({"x", "y", "extra1", "extra2"});
  std::string s = t.ToString();
  // Overflow cells are kept (folded into the last column), not dropped.
  EXPECT_NE(s.find("extra1"), std::string::npos);
  EXPECT_NE(s.find("extra2"), std::string::npos);
  EXPECT_NE(s.find("y | extra1 | extra2"), std::string::npos);
}

TEST(TablePrinterTest, EmptyRowAgainstEmptyHeaders) {
  TablePrinter t({});
  t.AddRow({"stray"});
  // Degenerate table: must not crash; the row is trimmed to zero columns.
  std::string s = t.ToString();
  EXPECT_EQ(s.find("stray"), std::string::npos);
}

TEST(ResourceGuardTest, InactiveGuardChargesNothing) {
  ResourceGuard g;
  EXPECT_FALSE(g.active());
  EXPECT_EQ(g.ChargeTuples(1'000'000), LimitKind::kNone);
  EXPECT_EQ(g.ChargeRound(1'000'000), LimitKind::kNone);
  EXPECT_EQ(g.Poll(), LimitKind::kNone);
  EXPECT_EQ(g.tripped(), LimitKind::kNone);
}

TEST(ResourceGuardTest, TupleBudgetTripsAndSticks) {
  ResourceLimits limits;
  limits.max_derived_tuples = 10;
  ResourceGuard g(limits);
  EXPECT_TRUE(g.active());
  EXPECT_EQ(g.ChargeTuples(10), LimitKind::kNone);
  EXPECT_EQ(g.ChargeTuples(1), LimitKind::kTupleBudget);
  // Sticky: every later check reports the same verdict.
  EXPECT_EQ(g.ChargeRound(1), LimitKind::kTupleBudget);
  EXPECT_EQ(g.Poll(), LimitKind::kTupleBudget);
  EXPECT_EQ(g.tripped(), LimitKind::kTupleBudget);
  EXPECT_NE(g.Describe().find("tuple"), std::string::npos);
}

TEST(ResourceGuardTest, ZeroDeadlineTripsOnFirstPoll) {
  ResourceGuard g(ResourceLimits::Deadline(std::chrono::seconds(0)));
  EXPECT_EQ(g.Poll(), LimitKind::kDeadline);
  EXPECT_EQ(g.tripped(), LimitKind::kDeadline);
}

TEST(ResourceGuardTest, DeadlinePolledAtCheckInterval) {
  ResourceLimits limits = ResourceLimits::Deadline(std::chrono::seconds(0));
  limits.check_interval = 4;
  ResourceGuard g(limits);
  // Below the interval no clock is read, so nothing trips yet.
  EXPECT_EQ(g.ChargeTuples(3), LimitKind::kNone);
  // Crossing the interval polls and sees the expired deadline.
  EXPECT_EQ(g.ChargeTuples(1), LimitKind::kDeadline);
}

TEST(ResourceGuardTest, RoundCapsPerComponentAndTotal) {
  ResourceLimits limits;
  limits.max_rounds_per_component = 2;
  ResourceGuard g(limits);
  EXPECT_EQ(g.ChargeRound(1), LimitKind::kNone);
  EXPECT_EQ(g.ChargeRound(2), LimitKind::kNone);
  EXPECT_EQ(g.ChargeRound(3), LimitKind::kRoundCap);

  ResourceLimits total;
  total.max_total_rounds = 3;
  ResourceGuard g2(total);
  EXPECT_EQ(g2.ChargeRound(1), LimitKind::kNone);
  EXPECT_EQ(g2.ChargeRound(1), LimitKind::kNone);  // new component, round 1
  EXPECT_EQ(g2.ChargeRound(2), LimitKind::kNone);
  EXPECT_EQ(g2.ChargeRound(3), LimitKind::kRoundCap);
}

TEST(ResourceGuardTest, MemoryBudget) {
  ResourceLimits limits;
  limits.max_memory_bytes = 1024;
  ResourceGuard g(limits);
  EXPECT_TRUE(g.memory_limited());
  EXPECT_EQ(g.ChargeMemory(512), LimitKind::kNone);
  EXPECT_EQ(g.peak_bytes(), 512);
  EXPECT_EQ(g.ChargeMemory(2048), LimitKind::kMemoryBudget);
}

TEST(ResourceGuardTest, CancellationFromToken) {
  ResourceLimits limits;
  limits.cancellation = std::make_shared<CancellationToken>();
  ResourceGuard g(limits);
  EXPECT_EQ(g.Poll(), LimitKind::kNone);
  limits.cancellation->Cancel();
  EXPECT_EQ(g.Poll(), LimitKind::kCancelled);
  EXPECT_NE(g.Describe().find("cancel"), std::string::npos);
}

TEST(ResourceGuardTest, EveryLimitKindHasAName) {
  for (LimitKind k :
       {LimitKind::kNone, LimitKind::kDeadline, LimitKind::kTupleBudget,
        LimitKind::kMemoryBudget, LimitKind::kRoundCap, LimitKind::kCancelled}) {
    EXPECT_STRNE(LimitKindName(k), "Unknown");
    EXPECT_STRNE(LimitKindName(k), "");
  }
}

}  // namespace
}  // namespace mad
