#include <gtest/gtest.h>

#include <unordered_set>

#include "datalog/value.h"

namespace mad {
namespace datalog {
namespace {

TEST(ValueTest, DefaultIsNone) {
  Value v;
  EXPECT_TRUE(v.is_none());
  EXPECT_FALSE(v.is_symbol());
}

TEST(ValueTest, SymbolInterning) {
  Value a = Value::Symbol("alpha");
  Value b = Value::Symbol("alpha");
  Value c = Value::Symbol("beta");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.symbol_id(), b.symbol_id());
  EXPECT_NE(a, c);
  EXPECT_EQ(a.symbol_name(), "alpha");
}

TEST(ValueTest, SymbolIdRoundTrip) {
  Value a = Value::Symbol("gamma");
  Value b = Value::SymbolId(a.symbol_id());
  EXPECT_EQ(a, b);
}

TEST(ValueTest, NumericKinds) {
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Real(3.5).is_double());
  EXPECT_TRUE(Value::Int(3).is_numeric());
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_FALSE(Value::Bool(true).is_numeric());
}

TEST(ValueTest, IntAndDoubleAreDistinctKeys) {
  // Representation identity is by kind; domains normalize before storing.
  EXPECT_NE(Value::Int(3), Value::Real(3.0));
}

TEST(ValueTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
}

TEST(ValueTest, NumericCompareAcrossKinds) {
  EXPECT_EQ(Value::NumericCompare(Value::Int(3), Value::Real(3.0)), 0);
  EXPECT_EQ(Value::NumericCompare(Value::Int(2), Value::Real(3.0)), -1);
  EXPECT_EQ(Value::NumericCompare(Value::Real(4.0), Value::Int(3)), 1);
  EXPECT_EQ(Value::NumericCompare(Value::Bool(true), Value::Int(1)), 0);
}

TEST(ValueTest, SetNormalization) {
  Value s1 = Value::Set({Value::Int(2), Value::Int(1), Value::Int(2)});
  Value s2 = Value::Set({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.set_value().size(), 2u);
}

TEST(ValueTest, SetEqualityIsDeep) {
  Value a = Value::Set({Value::Symbol("x")});
  Value b = Value::Set({Value::Symbol("x")});
  Value c = Value::Set({Value::Symbol("y")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ValueTest, HashConsistentWithEquality) {
  Value a = Value::Set({Value::Int(1), Value::Symbol("s")});
  Value b = Value::Set({Value::Symbol("s"), Value::Int(1)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_EQ(Value::Real(0.0).Hash(), Value::Real(-0.0).Hash());
  EXPECT_EQ(Value::Real(0.0), Value::Real(-0.0));
}

TEST(ValueTest, TotalOrderSortsByKindThenPayload) {
  std::vector<Value> vs = {Value::Real(1.0), Value::Int(5), Value::Symbol("a"),
                           Value::Int(2)};
  std::sort(vs.begin(), vs.end());
  // Symbols (kind 1) < ints (kind 2) < doubles (kind 3).
  EXPECT_TRUE(vs[0].is_symbol());
  EXPECT_EQ(vs[1], Value::Int(2));
  EXPECT_EQ(vs[2], Value::Int(5));
  EXPECT_TRUE(vs[3].is_double());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Symbol("abc").ToString(), "abc");
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Real(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Real(2.0).ToString(), "2");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Set({Value::Int(1), Value::Int(2)}).ToString(), "{1, 2}");
}

TEST(ValueTest, WorksAsUnorderedKey) {
  std::unordered_set<Value> set;
  for (int i = 0; i < 100; ++i) set.insert(Value::Int(i % 10));
  EXPECT_EQ(set.size(), 10u);
}

TEST(TupleTest, HashAndToString) {
  Tuple t1 = {Value::Symbol("a"), Value::Int(1)};
  Tuple t2 = {Value::Symbol("a"), Value::Int(1)};
  Tuple t3 = {Value::Int(1), Value::Symbol("a")};
  TupleHash h;
  EXPECT_EQ(h(t1), h(t2));
  EXPECT_NE(h(t1), h(t3));
  EXPECT_EQ(TupleToString(t1), "(a, 1)");
}

TEST(SymbolTableTest, GrowsAndIsStable) {
  SymbolTable& table = SymbolTable::Global();
  uint32_t id = table.Intern("stable_name_xyz");
  std::string_view name = table.NameOf(id);
  for (int i = 0; i < 1000; ++i) {
    table.Intern("filler_" + std::to_string(i));
  }
  // The earlier view must still be valid (deque-backed storage).
  EXPECT_EQ(name, "stable_name_xyz");
  EXPECT_EQ(table.Intern("stable_name_xyz"), id);
}

}  // namespace
}  // namespace datalog
}  // namespace mad
