// WalCursor — the shared segment-replay/log-shipping reader: multi-segment
// scans with resumable (segment, offset) positions, window caps, pruned
// positions, torn tails, and the two selection policies layered on top
// (recovery replay filtering and committed-gated shipping with the
// abort-lookahead withholding rule).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "server/replication/wal_cursor.h"
#include "server/wal.h"
#include "util/posix_file.h"

namespace mad {
namespace server {
namespace {

std::string TempDir() {
  std::string tmpl = ::testing::TempDir() + "mad_cursor_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

WalRecord Insert(int64_t epoch, std::string facts) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.epoch = epoch;
  r.facts_text = std::move(facts);
  return r;
}

WalRecord Abort(int64_t epoch) {
  WalRecord r;
  r.type = WalRecordType::kAbort;
  r.epoch = epoch;
  return r;
}

void Append(const std::string& dir, uint64_t seq,
            const std::vector<WalRecord>& records) {
  auto writer = WalWriter::Create(dir, seq, FsyncPolicy::kNever, nullptr);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (const WalRecord& r : records) {
    ASSERT_TRUE(writer->Append(r).ok());
  }
}

StatusOr<WalScan> Scan(const std::string& dir, const WalPosition& from,
                       int64_t max_records = 0, int64_t max_bytes = 0) {
  auto cursor = WalCursor::Open(dir);
  if (!cursor.ok()) return cursor.status();
  return cursor->Scan(from, max_records, max_bytes);
}

TEST(WalCursorTest, WalksSegmentsInSequenceOrder) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "one"), Insert(2, "two")});
  Append(dir, 2, {Insert(3, "three")});

  auto scan = Scan(dir, WalPosition{});
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->exhausted);
  EXPECT_FALSE(scan->position_pruned);
  EXPECT_EQ(scan->segments_scanned, 2);
  EXPECT_EQ(scan->max_seq_seen, 2u);
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].facts_text, "one");
  EXPECT_EQ(scan->records[2].facts_text, "three");
  ASSERT_EQ(scan->boundaries.size(), 3u);
  EXPECT_EQ(scan->boundaries[0].seq, 1u);
  EXPECT_EQ(scan->boundaries[2].seq, 2u);
  // Boundaries advance strictly within a segment.
  EXPECT_LT(scan->boundaries[0].offset, scan->boundaries[1].offset);
  // The final position sits at the end of the last segment.
  EXPECT_EQ(scan->next.seq, 2u);
  EXPECT_EQ(scan->next.offset, scan->boundaries[2].offset);
}

TEST(WalCursorTest, ResumesFromARecordBoundary) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "one"), Insert(2, "two")});
  Append(dir, 2, {Insert(3, "three")});

  auto all = Scan(dir, WalPosition{});
  ASSERT_TRUE(all.ok());

  // Resume just past record 0: exactly the suffix, same boundaries.
  auto suffix = Scan(dir, all->boundaries[0]);
  ASSERT_TRUE(suffix.ok()) << suffix.status();
  ASSERT_EQ(suffix->records.size(), 2u);
  EXPECT_EQ(suffix->records[0].facts_text, "two");
  EXPECT_EQ(suffix->records[1].facts_text, "three");

  // Resume at the end: nothing, exhausted, position parked where it was.
  auto end = Scan(dir, all->next);
  ASSERT_TRUE(end.ok()) << end.status();
  EXPECT_TRUE(end->records.empty());
  EXPECT_TRUE(end->exhausted);
  EXPECT_EQ(end->next.seq, all->next.seq);
  EXPECT_EQ(end->next.offset, all->next.offset);
}

TEST(WalCursorTest, RecordCapStopsEarlyAndResumes) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "one"), Insert(2, "two"), Insert(3, "three")});

  auto first = Scan(dir, WalPosition{}, /*max_records=*/2);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->exhausted);
  ASSERT_EQ(first->records.size(), 2u);

  auto rest = Scan(dir, first->next);
  ASSERT_TRUE(rest.ok());
  EXPECT_TRUE(rest->exhausted);
  ASSERT_EQ(rest->records.size(), 1u);
  EXPECT_EQ(rest->records[0].facts_text, "three");
}

TEST(WalCursorTest, ByteBudgetOverscansByExactlyOneRecord) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, std::string(128, 'a')), Insert(2, "b"),
                  Insert(3, "c")});
  // A 1-byte budget can never fit the first record, but the window still
  // takes it (first record is budget-exempt) plus exactly one lookahead
  // record past the budget — the selection layer's withholding rule needs
  // that successor to let the oversized record ship. The cut lands before
  // the third record.
  auto scan = Scan(dir, WalPosition{}, 0, /*max_bytes=*/1);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->records[1].facts_text, "b");
  EXPECT_FALSE(scan->exhausted);
}

TEST(WalCursorTest, ByteBudgetOverscanAtLogEndReportsLimitCut) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, std::string(128, 'a')), Insert(2, "b")});
  // The overscan record is the last record on disk: the scan still reports
  // a limit-cut window so the ship layer withholds it — a shipped window
  // never exceeds the budget by more than one record, and the next window
  // re-reads the withheld record as its budget-exempt first record.
  auto scan = Scan(dir, WalPosition{}, 0, /*max_bytes=*/1);
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  EXPECT_FALSE(scan->exhausted);

  auto rest = Scan(dir, scan->boundaries[0], 0, /*max_bytes=*/1);
  ASSERT_TRUE(rest.ok());
  ASSERT_EQ(rest->records.size(), 1u);
  EXPECT_EQ(rest->records[0].facts_text, "b");
  EXPECT_TRUE(rest->exhausted);
}

TEST(WalCursorTest, PrunedSegmentSignalsInsteadOfSkipping) {
  std::string dir = TempDir();
  Append(dir, 3, {Insert(7, "seven")});
  // Position names segment 1, which was pruned: resuming at segment 3 would
  // silently skip interior history, so the scan must refuse.
  auto scan = Scan(dir, WalPosition{1, 8});
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->position_pruned);
  EXPECT_TRUE(scan->records.empty());
}

TEST(WalCursorTest, OffsetBeyondSegmentIsAnError) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "one")});
  auto scan = Scan(dir, WalPosition{1, 1 << 20});
  EXPECT_FALSE(scan.ok());
}

TEST(WalCursorTest, EmptyDirectoryIsExhausted) {
  std::string dir = TempDir();
  auto scan = Scan(dir, WalPosition{});
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->exhausted);
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->max_seq_seen, 0u);
}

TEST(WalCursorTest, TornTailOnLastSegmentIsReported) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "one"), Insert(2, "two")});
  const std::string path = dir + "/" + WalSegmentName(1);
  auto bytes = util::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(bytes->size() - 3)),
            0);

  auto scan = Scan(dir, WalPosition{});
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->tail_truncated);
  EXPECT_EQ(scan->truncated_tail_records, 1);
  ASSERT_EQ(scan->records.size(), 1u);
  // The position parks at the end of the valid prefix, before the tear.
  EXPECT_EQ(scan->next.offset, scan->boundaries[0].offset);
}

TEST(WalCursorTest, ExposedCrcMatchesRecomputedPayloadCrc) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "arc(a, b, 1)."), Abort(2)});
  auto scan = Scan(dir, WalPosition{});
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->records.size(), 2u);
  for (const WalRecord& rec : scan->records) {
    EXPECT_EQ(rec.crc, WalPayloadCrc(rec));
    EXPECT_NE(rec.crc, 0u);
  }
}

// --- replay selection (the recovery filter) -------------------------------

TEST(ReplaySelectionTest, SkipsAbortPairsAndCheckpointCoveredEpochs) {
  std::vector<WalRecord> records = {Insert(1, "one"),   Insert(2, "two"),
                                    Insert(3, "fail"),  Abort(3),
                                    Insert(3, "three"), Insert(4, "four")};
  ReplaySelection sel = SelectReplayRecords(std::move(records),
                                            /*base_epoch=*/2);
  EXPECT_EQ(sel.skipped_aborted_batches, 1);
  ASSERT_EQ(sel.replay.size(), 2u);
  EXPECT_EQ(sel.replay[0].facts_text, "three");
  EXPECT_EQ(sel.replay[1].facts_text, "four");
}

// --- ship selection (the replication filter) ------------------------------

TEST(ShipSelectionTest, SkipsAbortPairsLikeRecoveryWould) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "one"), Insert(2, "fail"), Abort(2),
                  Insert(2, "two")});
  auto scan = Scan(dir, WalPosition{});
  ASSERT_TRUE(scan.ok());

  ShipSelection sel =
      SelectShippableRecords(*scan, WalPosition{}, /*committed_epoch=*/2);
  ASSERT_EQ(sel.records.size(), 2u);
  EXPECT_EQ(sel.records[0].facts_text, "one");
  EXPECT_EQ(sel.records[1].facts_text, "two");
  EXPECT_EQ(sel.next.offset, scan->boundaries[3].offset);
}

TEST(ShipSelectionTest, CommittedGateWithholdsTheWriteAheadTail) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "one"), Insert(2, "pending")});
  auto scan = Scan(dir, WalPosition{});
  ASSERT_TRUE(scan.ok());

  // The log runs ahead of the model: epoch 2 is on disk but not yet
  // committed, so it must not ship — it could still gain an abort marker.
  ShipSelection sel =
      SelectShippableRecords(*scan, WalPosition{}, /*committed_epoch=*/1);
  ASSERT_EQ(sel.records.size(), 1u);
  EXPECT_EQ(sel.records[0].facts_text, "one");
  EXPECT_EQ(sel.next.seq, scan->boundaries[0].seq);
  EXPECT_EQ(sel.next.offset, scan->boundaries[0].offset);
}

TEST(ShipSelectionTest, WithholdsWindowFinalInsertInACutWindow) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "one"), Insert(2, "two"), Insert(3, "three")});

  // A limit-cut window (3 records on disk, 2 scanned): the second record's
  // abort status is unknowable — the marker, if any, is the unscanned next
  // record — so only the first ships.
  auto cut = Scan(dir, WalPosition{}, /*max_records=*/2);
  ASSERT_TRUE(cut.ok());
  ASSERT_FALSE(cut->exhausted);
  ShipSelection sel =
      SelectShippableRecords(*cut, WalPosition{}, /*committed_epoch=*/3);
  ASSERT_EQ(sel.records.size(), 1u);
  EXPECT_EQ(sel.records[0].facts_text, "one");

  // Resuming from the selection's position retrieves the withheld record:
  // no stall, just a one-record handover to the next window.
  auto next = Scan(dir, sel.next, /*max_records=*/3);
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next->exhausted);
  ShipSelection rest =
      SelectShippableRecords(*next, sel.next, /*committed_epoch=*/3);
  ASSERT_EQ(rest.records.size(), 2u);
  EXPECT_EQ(rest.records[0].facts_text, "two");
  EXPECT_EQ(rest.records[1].facts_text, "three");
}

TEST(ShipSelectionTest, ExhaustedScanShipsTheFinalInsert) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "one")});
  auto scan = Scan(dir, WalPosition{});
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(scan->exhausted);
  // At the true end of the log there is no hidden abort marker: a committed
  // log-final insert ships even without lookahead.
  ShipSelection sel =
      SelectShippableRecords(*scan, WalPosition{}, /*committed_epoch=*/1);
  ASSERT_EQ(sel.records.size(), 1u);
}

TEST(ShipSelectionTest, RecordLargerThanTheByteBudgetDoesNotStallShipping) {
  std::string dir = TempDir();
  const std::string big(512, 'x');
  Append(dir, 1, {Insert(1, "a"), Insert(2, big), Insert(3, "b")});

  // Drive scan → select exactly the way the primary's frame handler does,
  // with a byte budget far smaller than the middle record. Regression: a
  // byte cap without overscan cuts the window right after the oversized
  // record, the withholding rule then parks it as a window-final insert,
  // and the selection comes back empty with next == from — a permanent
  // livelock. Every round must make progress until the log is drained.
  constexpr int64_t kMaxBytes = 64;
  std::vector<std::string> shipped;
  WalPosition pos;
  for (int round = 0; round < 10 && shipped.size() < 3u; ++round) {
    auto scan = Scan(dir, pos, /*max_records=*/0, kMaxBytes);
    ASSERT_TRUE(scan.ok()) << scan.status();
    ShipSelection sel =
        SelectShippableRecords(*scan, pos, /*committed_epoch=*/3);
    const bool advanced =
        sel.next.seq != pos.seq || sel.next.offset != pos.offset;
    ASSERT_TRUE(advanced) << "shipper livelocked at round " << round;
    // Limit-cut windows never ship more than the budget plus one record.
    int64_t window_bytes = 0;
    for (const WalRecord& rec : sel.records) {
      window_bytes += static_cast<int64_t>(rec.facts_text.size());
      shipped.push_back(rec.facts_text);
    }
    EXPECT_LE(window_bytes,
              kMaxBytes + static_cast<int64_t>(big.size()));
    pos = sel.next;
  }
  ASSERT_EQ(shipped.size(), 3u);
  EXPECT_EQ(shipped[0], "a");
  EXPECT_EQ(shipped[1], big);
  EXPECT_EQ(shipped[2], "b");
}

TEST(ShipSelectionTest, AbortOnlyWindowStillAdvancesThePosition) {
  std::string dir = TempDir();
  Append(dir, 1, {Insert(1, "fail"), Abort(1)});
  auto scan = Scan(dir, WalPosition{});
  ASSERT_TRUE(scan.ok());
  ShipSelection sel =
      SelectShippableRecords(*scan, WalPosition{}, /*committed_epoch=*/0);
  EXPECT_TRUE(sel.records.empty());
  // An empty frame with an advanced position: the subscriber skips the
  // failed batch instead of re-polling the same window forever.
  EXPECT_EQ(sel.next.offset, scan->boundaries[1].offset);
}

}  // namespace
}  // namespace server
}  // namespace mad
