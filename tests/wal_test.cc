// Durability primitives under fault injection: CRC32C known answers, WAL
// record framing, torn-tail truncation at *every* byte boundary, the
// mid-segment-corruption hard-fail, checkpoint encode/decode, atomic
// checkpoint publication, and recovery planning over mixed directories.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "server/checkpoint.h"
#include "server/recovery.h"
#include "server/state.h"
#include "server/wal.h"
#include "util/crc32c.h"
#include "util/posix_file.h"

namespace mad {
namespace server {
namespace {

// RFC 3720-style known-answer vectors for CRC32C (Castagnoli).
TEST(Crc32cTest, KnownAnswers) {
  EXPECT_EQ(util::Crc32c("", 0), 0u);
  EXPECT_EQ(util::Crc32c("123456789", 9), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(util::Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, SeedChainsIncrementally) {
  const std::string data = "monotone aggregation";
  uint32_t whole = util::Crc32c(data.data(), data.size());
  uint32_t part = util::Crc32c(data.data(), 8);
  uint32_t chained = util::Crc32c(data.data() + 8, data.size() - 8, part);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu}) {
    EXPECT_EQ(util::UnmaskCrc(util::MaskCrc(crc)), crc);
    // Masking exists so a CRC of data containing CRCs stays independent.
    EXPECT_NE(util::MaskCrc(crc), crc);
  }
}

std::string TempDir() {
  std::string tmpl = ::testing::TempDir() + "mad_wal_XXXXXX";
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

WalRecord Insert(int64_t epoch, std::string facts) {
  WalRecord r;
  r.type = WalRecordType::kInsert;
  r.epoch = epoch;
  r.facts_text = std::move(facts);
  return r;
}

TEST(WalTest, SegmentNameRoundTrips) {
  EXPECT_EQ(WalSegmentName(7), "wal-0000000007.log");
  uint64_t seq = 0;
  EXPECT_TRUE(ParseWalSegmentName("wal-0000000007.log", &seq));
  EXPECT_EQ(seq, 7u);
  EXPECT_FALSE(ParseWalSegmentName("wal-7.log", &seq));
  EXPECT_FALSE(ParseWalSegmentName("wal-00000000x7.log", &seq));
  EXPECT_FALSE(ParseWalSegmentName("checkpoint-0000000007.ckpt", &seq));
}

TEST(WalTest, AppendThenReadRoundTrips) {
  std::string dir = TempDir();
  auto writer = WalWriter::Create(dir, 1, FsyncPolicy::kAlways, nullptr);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->Append(Insert(1, "arc(a, b, 1).")).ok());
  ASSERT_TRUE(writer->Append(Insert(2, "arc(b, c, 2).\narc(c, d, 3).")).ok());
  WalRecord abort;
  abort.type = WalRecordType::kAbort;
  abort.epoch = 3;
  ASSERT_TRUE(writer->Append(abort).ok());
  EXPECT_EQ(writer->records(), 3);

  auto read = ReadWalSegment(dir + "/" + WalSegmentName(1));
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_FALSE(read->truncated_tail);
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_EQ(read->records[0].epoch, 1);
  EXPECT_EQ(read->records[0].facts_text, "arc(a, b, 1).");
  EXPECT_EQ(read->records[1].facts_text, "arc(b, c, 2).\narc(c, d, 3).");
  EXPECT_EQ(read->records[2].type, WalRecordType::kAbort);
  EXPECT_EQ(read->records[2].facts_text, "");
}

TEST(WalTest, CreateRefusesExistingSegment) {
  std::string dir = TempDir();
  auto first = WalWriter::Create(dir, 1, FsyncPolicy::kNever, nullptr);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Append(Insert(1, "arc(a, b, 1).")).ok());
  auto second = WalWriter::Create(dir, 1, FsyncPolicy::kNever, nullptr);
  EXPECT_FALSE(second.ok());
}

/// Stops permitting bytes after a budget is spent: byte-exact crash
/// simulation (the prefix lands, nothing after does).
class CrashAtByte : public util::IoHooks {
 public:
  explicit CrashAtByte(int64_t budget) : budget_(budget) {}

  StatusOr<size_t> BeforeWrite(const std::string& path, size_t n) override {
    (void)path;
    if (budget_ >= static_cast<int64_t>(n)) {
      budget_ -= static_cast<int64_t>(n);
      return n;
    }
    size_t allowed = budget_ > 0 ? static_cast<size_t>(budget_) : 0;
    budget_ = 0;
    crashed_ = true;
    return allowed;  // short write: prefix lands, call fails
  }

  Status BeforeSync(const std::string& path) override {
    (void)path;
    if (crashed_) return Status::Internal("crashed before fsync");
    return Status::OK();
  }

 private:
  int64_t budget_;
  bool crashed_ = false;
};

// The core torn-tail guarantee, exhaustively: write a 3-record WAL, then for
// every byte budget B from 0 to the full size, re-write it crashing at B and
// require that reading recovers exactly the records whose frames fit in B —
// never an error, never a spurious record, tail truncation reported iff the
// crash landed mid-record.
TEST(WalTest, CrashAtEveryByteBoundaryRecoversPrefix) {
  const std::vector<WalRecord> history = {
      Insert(1, "arc(a, b, 1)."),
      Insert(2, "arc(b, c, 2)."),
      Insert(3, "arc(c, d, 3).\narc(d, e, 4)."),
  };
  // Frame sizes tell us which records must survive a crash at byte B.
  std::vector<int64_t> cutoffs;  // end offset of each record
  int64_t off = static_cast<int64_t>(kWalMagicBytes);
  for (const WalRecord& r : history) {
    off += static_cast<int64_t>(EncodeWalRecord(r).size());
    cutoffs.push_back(off);
  }
  const int64_t total = off;

  for (int64_t budget = 0; budget <= total; ++budget) {
    CrashAtByte hooks(budget);
    std::string dir = TempDir();
    auto writer = WalWriter::Create(dir, 1, FsyncPolicy::kAlways, &hooks);
    if (writer.ok()) {
      for (const WalRecord& r : history) {
        if (!writer->Append(r).ok()) break;
      }
    }
    // Crash happened (unless budget == total). Now recover.
    const std::string path = dir + "/" + WalSegmentName(1);
    size_t expect = 0;
    for (int64_t c : cutoffs) {
      if (budget >= c) ++expect;
    }
    if (budget < static_cast<int64_t>(kWalMagicBytes)) {
      // Not even the magic landed: the segment reads as empty-with-torn-tail
      // (or does not exist at budget 0 — both recover to zero records).
      if (util::FileExists(path)) {
        auto read = ReadWalSegment(path);
        ASSERT_TRUE(read.ok()) << "budget " << budget << ": " << read.status();
        EXPECT_TRUE(read->records.empty());
      }
      continue;
    }
    auto read = ReadWalSegment(path);
    ASSERT_TRUE(read.ok()) << "budget " << budget << ": " << read.status();
    ASSERT_EQ(read->records.size(), expect) << "budget " << budget;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(read->records[i].epoch, history[i].epoch);
      EXPECT_EQ(read->records[i].facts_text, history[i].facts_text);
    }
    const bool mid_record =
        std::find(cutoffs.begin(), cutoffs.end(), budget) == cutoffs.end() &&
        budget != static_cast<int64_t>(kWalMagicBytes);
    EXPECT_EQ(read->truncated_tail, mid_record) << "budget " << budget;
  }
}

TEST(WalTest, InteriorCorruptionHardFails) {
  std::string dir = TempDir();
  auto writer = WalWriter::Create(dir, 1, FsyncPolicy::kNever, nullptr);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(Insert(1, "arc(a, b, 1).")).ok());
  ASSERT_TRUE(writer->Append(Insert(2, "arc(b, c, 2).")).ok());

  const std::string path = dir + "/" + WalSegmentName(1);
  auto bytes = util::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  // Flip one payload byte of the FIRST record: a bad record with more data
  // after it is interior corruption, not a torn tail.
  std::string corrupted = *bytes;
  corrupted[kWalMagicBytes + 8 + 2] ^= 0x01;
  {
    FILE* f = ::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::fwrite(corrupted.data(), 1, corrupted.size(), f),
              corrupted.size());
    ::fclose(f);
  }
  auto read = ReadWalSegment(path);
  EXPECT_FALSE(read.ok());

  // The same flip in the LAST record is a valid torn tail: truncate.
  std::string tail_corrupt = *bytes;
  tail_corrupt[tail_corrupt.size() - 3] ^= 0x01;
  {
    FILE* f = ::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::fwrite(tail_corrupt.data(), 1, tail_corrupt.size(), f),
              tail_corrupt.size());
    ::fclose(f);
  }
  auto tail_read = ReadWalSegment(path);
  ASSERT_TRUE(tail_read.ok()) << tail_read.status();
  EXPECT_TRUE(tail_read->truncated_tail);
  ASSERT_EQ(tail_read->records.size(), 1u);
  EXPECT_EQ(tail_read->records[0].epoch, 1);
}

TEST(WalTest, GarbageMagicIsAnError) {
  std::string dir = TempDir();
  const std::string path = dir + "/" + WalSegmentName(1);
  FILE* f = ::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ::fwrite("NOTAWAL!garbage", 1, 15, f);
  ::fclose(f);
  EXPECT_FALSE(ReadWalSegment(path).ok());
}

// --- checkpoint codec ----------------------------------------------------

CheckpointData SampleCheckpoint() {
  CheckpointData ckpt;
  ckpt.epoch = 42;
  ckpt.program_text = ".decl arc(from, to, c: min_real)\n";
  ckpt.facts_text = "arc(a, b, 1).\n";
  ckpt.completeness = "least-model";
  ckpt.certificate_summary = "c0:syntactically-admissible";
  CheckpointData::RelationDump dump;
  dump.name = "arc";
  dump.arity = 3;
  dump.has_cost = true;
  dump.has_default = false;
  dump.domain = "min_real";
  dump.rows.emplace_back(
      datalog::Tuple{datalog::Value::Symbol("a"), datalog::Value::Symbol("b")},
      datalog::Value::Real(1.0));
  ckpt.relations.push_back(std::move(dump));
  return ckpt;
}

TEST(CheckpointTest, EncodeDecodeRoundTrips) {
  CheckpointData ckpt = SampleCheckpoint();
  auto decoded = DecodeCheckpoint(EncodeCheckpoint(ckpt), "test");
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->epoch, 42);
  EXPECT_EQ(decoded->program_text, ckpt.program_text);
  EXPECT_EQ(decoded->facts_text, ckpt.facts_text);
  EXPECT_EQ(decoded->certificate_summary, ckpt.certificate_summary);
  ASSERT_EQ(decoded->relations.size(), 1u);
  EXPECT_EQ(decoded->relations[0].name, "arc");
  EXPECT_EQ(decoded->relations[0].domain, "min_real");
  ASSERT_EQ(decoded->relations[0].rows.size(), 1u);
  EXPECT_EQ(decoded->relations[0].rows[0].second.double_value(), 1.0);
}

TEST(CheckpointTest, EveryTruncationAndBitFlipIsRejected) {
  const std::string good = EncodeCheckpoint(SampleCheckpoint());
  // Every strict prefix must fail (CRC or framing), never crash or succeed.
  for (size_t len = 0; len < good.size(); ++len) {
    auto decoded = DecodeCheckpoint(good.substr(0, len), "prefix");
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
  // A single flipped bit anywhere must fail the CRC (or the framing).
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] ^= 0x20;
    auto decoded = DecodeCheckpoint(bad, "bitflip");
    EXPECT_FALSE(decoded.ok()) << "flipped byte " << i;
  }
}

TEST(CheckpointTest, FileNameRoundTrips) {
  EXPECT_EQ(CheckpointFileName(42), "checkpoint-0000000042.ckpt");
  int64_t epoch = 0;
  EXPECT_TRUE(ParseCheckpointFileName("checkpoint-0000000042.ckpt", &epoch));
  EXPECT_EQ(epoch, 42);
  EXPECT_FALSE(ParseCheckpointFileName("checkpoint-42.ckpt", &epoch));
  EXPECT_FALSE(ParseCheckpointFileName("wal-0000000042.log", &epoch));
}

/// Fails the rename step: crash between checkpoint-write and publish.
class FailRename : public util::IoHooks {
 public:
  Status BeforeRename(const std::string& from, const std::string& to) override {
    (void)from;
    (void)to;
    return Status::Internal("injected crash before rename");
  }
};

TEST(CheckpointTest, CrashBeforeRenameLeavesNoCheckpoint) {
  std::string dir = TempDir();
  FailRename hooks;
  CheckpointData ckpt = SampleCheckpoint();
  EXPECT_FALSE(WriteCheckpoint(dir, ckpt, &hooks).ok());
  // The atomicity protocol: no checkpoint file may exist, and recovery must
  // clean up whatever temp is left and proceed from nothing.
  EXPECT_FALSE(util::FileExists(dir + "/" + CheckpointFileName(42)));
  auto plan = PlanRecovery(dir);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->checkpoint.has_value());
  auto names = util::ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names->empty());  // the stray .tmp was deleted
}

// --- recovery planning ----------------------------------------------------

TEST(RecoveryPlanTest, PicksNewestValidCheckpointAndFiltersReplay) {
  std::string dir = TempDir();
  // Two checkpoints; corrupt the newer one so the older must win.
  CheckpointData old_ckpt = SampleCheckpoint();
  old_ckpt.epoch = 2;
  ASSERT_TRUE(WriteCheckpoint(dir, old_ckpt, nullptr).ok());
  CheckpointData new_ckpt = SampleCheckpoint();
  new_ckpt.epoch = 5;
  ASSERT_TRUE(WriteCheckpoint(dir, new_ckpt, nullptr).ok());
  {
    const std::string path = dir + "/" + CheckpointFileName(5);
    auto bytes = util::ReadFileToString(path);
    ASSERT_TRUE(bytes.ok());
    std::string bad = *bytes;
    bad[bad.size() / 2] ^= 0xFF;
    FILE* f = ::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ::fwrite(bad.data(), 1, bad.size(), f);
    ::fclose(f);
  }

  // Segment 1: epochs 1..3 (1 and 2 are covered by the checkpoint), plus an
  // aborted pair at 4, plus a good record at 4.
  auto writer = WalWriter::Create(dir, 1, FsyncPolicy::kNever, nullptr);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Append(Insert(1, "one")).ok());
  ASSERT_TRUE(writer->Append(Insert(2, "two")).ok());
  ASSERT_TRUE(writer->Append(Insert(3, "three")).ok());
  WalRecord failed = Insert(4, "failed");
  ASSERT_TRUE(writer->Append(failed).ok());
  WalRecord abort;
  abort.type = WalRecordType::kAbort;
  abort.epoch = 4;
  ASSERT_TRUE(writer->Append(abort).ok());
  ASSERT_TRUE(writer->Append(Insert(4, "four")).ok());

  auto plan = PlanRecovery(dir);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->checkpoint.has_value());
  EXPECT_EQ(plan->checkpoint->epoch, 2);
  EXPECT_EQ(plan->invalid_checkpoints, 1);
  EXPECT_EQ(plan->skipped_aborted_batches, 1);
  ASSERT_EQ(plan->replay.size(), 2u);
  EXPECT_EQ(plan->replay[0].facts_text, "three");
  EXPECT_EQ(plan->replay[1].facts_text, "four");
  EXPECT_EQ(plan->next_segment_seq, 2u);
}

// durable_epoch is the replication layer's shipping gate (only fsync'd
// epochs may be offered to subscribers), so its monotonicity is load-bearing
// beyond stats cosmetics: a dip would let a replica observe an epoch the
// primary could still lose.
TEST(DurableEpochTest, StrictlyMonotoneAcrossRotationPruningAndRestart) {
  const std::string dir = TempDir();
  ServerState::LoadOptions options;
  options.durability.data_dir = dir;
  // Aggressive cadence: a checkpoint (and the WAL prune behind it) lands
  // every other insert, so rotation happens repeatedly mid-test.
  options.durability.checkpoint_every_epochs = 2;
  options.durability.checkpoint_every_bytes = 0;

  constexpr const char* kProgram = R"(
.decl arc(from, to, c: min_real)
arc(a, b, 1).
)";
  auto stats_durable = [](ServerState* state) {
    Json req = Json::Object();
    req.Set("verb", Json::Str("stats"));
    Json stats = state->Handle(req);
    EXPECT_TRUE(stats.At("ok").boolean) << stats.Dump();
    return stats.At("durability").IntOr("durable_epoch", -1);
  };

  int64_t last_durable = -1;
  {
    auto state = ServerState::Load(kProgram, options);
    ASSERT_TRUE(state.ok()) << state.status();
    EXPECT_EQ(stats_durable(state->get()), 0);
    last_durable = 0;
    for (int i = 0; i < 7; ++i) {
      Json ins = Json::Object();
      ins.Set("verb", Json::Str("insert"));
      ins.Set("facts", Json::Str("arc(x" + std::to_string(i) + ", y, 1)."));
      ASSERT_TRUE((*state)->Handle(ins).At("ok").boolean);
      const int64_t durable = stats_durable(state->get());
      // Strict: every fsync'd insert advances it; rotation/pruning between
      // epochs 2, 4, 6 must never pull it back.
      EXPECT_EQ(durable, last_durable + 1) << "after insert " << i;
      last_durable = durable;
    }
    // An explicit checkpoint+prune cycle on top: still no regression.
    Json sync = Json::Object();
    sync.Set("verb", Json::Str("sync"));
    sync.Set("checkpoint", Json::Bool(true));
    ASSERT_TRUE((*state)->Handle(sync).At("ok").boolean);
    EXPECT_EQ(stats_durable(state->get()), last_durable);
  }
  // Across a restart the recovered durable_epoch resumes at the recovered
  // epoch — monotone with the pre-restart watermark, never reset.
  auto reborn = ServerState::Load(kProgram, options);
  ASSERT_TRUE(reborn.ok()) << reborn.status();
  EXPECT_EQ(stats_durable(reborn->get()), last_durable);
}

TEST(RecoveryPlanTest, PruneKeepsOnlyCoveredFiles) {
  std::string dir = TempDir();
  CheckpointData a = SampleCheckpoint();
  a.epoch = 2;
  ASSERT_TRUE(WriteCheckpoint(dir, a, nullptr).ok());
  CheckpointData b = SampleCheckpoint();
  b.epoch = 7;
  ASSERT_TRUE(WriteCheckpoint(dir, b, nullptr).ok());
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    auto w = WalWriter::Create(dir, seq, FsyncPolicy::kNever, nullptr);
    ASSERT_TRUE(w.ok());
  }
  ASSERT_TRUE(PruneDataDir(dir, /*keep_seq=*/3, /*keep_epoch=*/7).ok());
  auto names = util::ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{CheckpointFileName(7),
                                              WalSegmentName(3)}));
}

}  // namespace
}  // namespace server
}  // namespace mad
