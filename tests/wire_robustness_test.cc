// Wire-protocol robustness: a hostile or broken peer must produce a clean
// per-connection error — never a crash, a hung accept loop, or a leaked
// connection thread. Each abuse case talks raw bytes to a live server, then
// proves the server still answers a well-formed request and drains cleanly.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "server/client.h"
#include "server/server.h"
#include "server/state.h"
#include "server/wire.h"

namespace mad {
namespace server {
namespace {

constexpr const char* kProgram = R"(
.decl arc(from, to, c: min_real)
.decl s(from, to, c: min_real)
s(X, Y, C) :- arc(X, Y, C).
arc(a, b, 1).
)";

std::unique_ptr<ServerState> MustLoad() {
  auto state = ServerState::Load(kProgram, {});
  EXPECT_TRUE(state.ok()) << state.status();
  return std::move(state).value();
}

/// Raw TCP connection for speaking deliberately broken protocol.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
        0);
  }
  ~RawConn() { Close(); }

  void Send(const std::string& bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Half-close: we stop sending (the mid-frame drop), keep reading.
  void DropWrites() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until the peer closes; returns everything received.
  std::string DrainToEof() {
    std::string all;
    char buf[512];
    ssize_t n;
    while ((n = ::recv(fd_, buf, sizeof(buf), 0)) > 0) {
      all.append(buf, static_cast<size_t>(n));
    }
    return all;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

/// The post-abuse invariant: the server still serves and drains. Wait()
/// joins the accept loop and every connection thread, so its return is the
/// no-leaked-thread proof.
void ExpectStillHealthy(Server* server) {
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status();
  auto pong = client->Ping();
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->At("ok").boolean);
  server->RequestShutdown();
  server->Wait();
}

TEST(WireRobustnessTest, GarbageLengthPrefixClosesConnectionOnly) {
  auto srv = Server::Start(MustLoad(), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  {
    RawConn conn((*srv)->port());
    conn.Send("not-a-number\n{\"verb\":\"ping\"}\n");
    // The server rejects the frame and closes; no response bytes for a
    // malformed header (there is no frame to respond inside of).
    EXPECT_EQ(conn.DrainToEof(), "");
  }
  ExpectStillHealthy(srv->get());
}

TEST(WireRobustnessTest, OversizeFrameIsRejectedBeforeAllocation) {
  auto srv = Server::Start(MustLoad(), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  {
    RawConn conn((*srv)->port());
    // Over the 64 MiB cap: the server must refuse from the header alone —
    // we never send (and it must never try to read) the claimed payload.
    conn.Send("999999999999\n");
    EXPECT_EQ(conn.DrainToEof(), "");
  }
  {
    RawConn conn((*srv)->port());
    conn.Send(std::to_string(kMaxFrameBytes + 1) + "\n");
    EXPECT_EQ(conn.DrainToEof(), "");
  }
  ExpectStillHealthy(srv->get());
}

TEST(WireRobustnessTest, TruncatedFrameClosesCleanly) {
  auto srv = Server::Start(MustLoad(), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  {
    // Claim 100 bytes, deliver 10, then vanish mid-frame.
    RawConn conn((*srv)->port());
    conn.Send("100\n{\"verb\":\"");
    conn.DropWrites();
    EXPECT_EQ(conn.DrainToEof(), "");
  }
  {
    // Header itself cut off.
    RawConn conn((*srv)->port());
    conn.Send("10");
    conn.DropWrites();
    EXPECT_EQ(conn.DrainToEof(), "");
  }
  ExpectStillHealthy(srv->get());
}

TEST(WireRobustnessTest, MissingTerminatorIsRejected) {
  auto srv = Server::Start(MustLoad(), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  {
    // Correct length, but the byte after the payload is not '\n'.
    const std::string payload = "{\"verb\":\"ping\"}";
    RawConn conn((*srv)->port());
    conn.Send(std::to_string(payload.size()) + "\n" + payload + "X");
    conn.DropWrites();
    EXPECT_EQ(conn.DrainToEof(), "");
  }
  ExpectStillHealthy(srv->get());
}

TEST(WireRobustnessTest, AbuseDoesNotDisturbConcurrentWellFormedTraffic) {
  auto srv = Server::Start(MustLoad(), {});
  ASSERT_TRUE(srv.ok()) << srv.status();
  auto client = Client::Connect("127.0.0.1", (*srv)->port());
  ASSERT_TRUE(client.ok());

  for (int round = 0; round < 8; ++round) {
    RawConn abuse((*srv)->port());
    abuse.Send(round % 2 == 0 ? "garbage\n" : "999999999999\n");
    // Interleave a real request on the long-lived connection.
    auto pong = client->Ping();
    ASSERT_TRUE(pong.ok()) << "round " << round << ": " << pong.status();
    EXPECT_TRUE(pong->At("ok").boolean);
  }
  // Malformed JSON inside a well-formed frame: per-request error response,
  // connection stays up.
  {
    RawConn conn((*srv)->port());
    const std::string payload = "{this is not json";
    conn.Send(std::to_string(payload.size()) + "\n" + payload + "\n");
    conn.DropWrites();  // so the server sees EOF after responding
    std::string reply = conn.DrainToEof();
    EXPECT_NE(reply.find("not valid JSON"), std::string::npos) << reply;
  }
  ExpectStillHealthy(srv->get());
}

}  // namespace
}  // namespace server
}  // namespace mad
